"""The paper's experiment methodology, end to end.

One *pair run* reproduces Section II.D for one clip pair: build the
path to a pair of co-located servers under sampled network conditions,
verify them with ping and tracert, start Ethereal (the sniffer), stream
the RealPlayer and MediaPlayer clips **simultaneously** from the two
servers to the one client, record application statistics with both
trackers, then ping/tracert again.  A *study* is the full sweep over
Table 1's thirteen pairs, each with freshly sampled conditions — the
corpus every figure draws from.
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.capture.sniffer import Sniffer
from repro.capture.trace import Trace
from repro.core.fitting import fit_profile
from repro.core.turbulence import TurbulenceProfile
from repro.errors import ExperimentError
from repro.experiments.conditions import NetworkConditions, sample_conditions
from repro.experiments.datasets import build_table1_library
from repro.faults.controller import FaultController
from repro.faults.scenario import FaultScenario
from repro.media.clip import Clip
from repro.media.library import ClipLibrary, ClipPair, ClipSet, RateBand
from repro.netsim.addressing import IPAddress
from repro.netsim.engine import Simulator
from repro.netsim.rng import RandomStreams
from repro.netsim.routing import RouteManager
from repro.netsim.tcp import TcpReliability
from repro.netsim.topology import PathTopology, build_path_topology
from repro.experiments.progress import (
    PHASE_DONE,
    PHASE_START,
    Heartbeat,
    ProgressCallback,
)
from repro.players.base import PlayerRobustness
from repro.players.mediatracker import MediaTracker
from repro.players.realtracker import RealTracker
from repro.players.stats import PlayerStats
from repro.servers.realserver import RealServer
from repro.servers.scaling import MediaScalingPolicy
from repro.servers.wms import WindowsMediaServer
from repro.telemetry.core import Telemetry
from repro.telemetry.streaming import StreamingSink, StreamingSummary
from repro.tools.ping import PingReport, run_ping
from repro.tools.stability import StabilityVerdict, verify_stability
from repro.tools.tracert import TracerouteReport, run_tracert

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cc.abr import AbrConfig
    from repro.cc.base import CcConfig
    from repro.netsim.flowlevel import FastPathSummary, FlowLevelConfig
    from repro.repair.base import RepairConfig
    from repro.validate.checker import RunValidator

#: Below this many pair runs a parallel request silently downgrades to
#: sequential execution: the pool's fork/merge overhead exceeds the
#: win on small sweeps (BENCH_substrate.json: the 13-run study at
#: default size gains from workers, a 2-run one-set sweep does not).
PARALLEL_MIN_RUNS = 6


@dataclass
class PairRunResult:
    """Everything one simultaneous-stream run produced."""

    set_number: int
    genre: str
    band: RateBand
    conditions: NetworkConditions
    real_clip: Clip
    wmp_clip: Clip
    real_stats: PlayerStats
    wmp_stats: PlayerStats
    trace: Trace
    real_server: IPAddress
    wmp_server: IPAddress
    ping_before: PingReport
    ping_after: PingReport
    tracert: TracerouteReport
    tracert_after: TracerouteReport
    stability: StabilityVerdict
    #: Flow-level fast-path outcome for this run, when the study opted
    #: in (``None`` on packet-level runs).
    fastpath: Optional["FastPathSummary"] = None

    # ------------------------------------------------------------------
    # Per-flow views
    # ------------------------------------------------------------------
    def real_flow(self) -> Trace:
        """The RealPlayer media packets of the shared capture."""
        return self._media_flow(self.real_server)

    def wmp_flow(self) -> Trace:
        """The MediaPlayer media packets of the shared capture."""
        return self._media_flow(self.wmp_server)

    def _media_flow(self, server: IPAddress) -> Trace:
        flow = self.trace.udp().flow(server)
        return flow.filter(lambda r: r.payload_kind == "media")

    def real_profile(self) -> TurbulenceProfile:
        return fit_profile(self.real_flow(), self.real_clip.encoded_kbps,
                           label=self.real_clip.label(),
                           stats=self.real_stats)

    def wmp_profile(self) -> TurbulenceProfile:
        return fit_profile(self.wmp_flow(), self.wmp_clip.encoded_kbps,
                           label=self.wmp_clip.label(),
                           stats=self.wmp_stats)

    @property
    def label(self) -> str:
        return f"set{self.set_number}-{self.band.short}"


@dataclass
class StudyResults:
    """All pair runs of one study sweep."""

    runs: List[PairRunResult] = field(default_factory=list)
    #: The shared telemetry facade the sweep ran under, when one was
    #: requested — its registry holds every run's metrics, scoped by a
    #: ``run=<label>`` context label.
    telemetry: Optional[Telemetry] = None
    #: How the sweep actually executed: "sequential", "parallel
    #: jobs=N", or the auto-downgrade note when a parallel request fell
    #: back to sequential on a small sweep.
    execution: str = "sequential"
    #: The online-folded study summary, when the sweep streamed (see
    #: :mod:`repro.telemetry.streaming`): every pair run folded into a
    #: fresh per-run summary, merged here in library order — identical
    #: bytes whether the sweep ran sequentially, on a pool, or came
    #: back from the disk cache.
    streaming: Optional[StreamingSummary] = None

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def by_band(self, band: RateBand) -> List[PairRunResult]:
        return [run for run in self.runs if run.band == band]

    def rtt_samples(self) -> List[float]:
        """Every per-probe RTT across all runs' pings (Figure 1's data)."""
        samples: List[float] = []
        for run in self.runs:
            samples.extend(run.ping_before.rtts)
            samples.extend(run.ping_after.rtts)
        return samples

    def hop_samples(self) -> List[int]:
        """Per-run tracert hop counts (Figure 2's data)."""
        return [run.tracert.hop_count for run in self.runs]

    def loss_percent(self) -> float:
        """Aggregate ping loss across the study (paper: "near 0%")."""
        sent = sum(r.ping_before.sent + r.ping_after.sent for r in self.runs)
        received = sum(r.ping_before.received + r.ping_after.received
                       for r in self.runs)
        if sent == 0:
            return 0.0
        return 100.0 * (sent - received) / sent


def _fault_links(topology: PathTopology,
                 conditions: NetworkConditions) -> Dict[str, object]:
    """Map symbolic link roles onto the built path.

    ``access`` is the client's first hop; ``middle`` is the same link
    the topology builder treats as the lossy/jittery mid-path hop.
    """
    path_links = len(topology.links) - len(topology.servers)
    middle_index = min(conditions.hop_count // 2, path_links - 1)
    return {"access": topology.links[0],
            "middle": topology.links[middle_index]}


def run_pair_experiment(clip_set: ClipSet, pair: ClipPair, seed: int,
                        conditions: Optional[NetworkConditions] = None,
                        preroll_seconds: float = 5.0,
                        telemetry: Optional[Telemetry] = None,
                        scenario: Optional[FaultScenario] = None,
                        validate: Optional["RunValidator"] = None,
                        cc: Optional["CcConfig"] = None,
                        abr: Optional["AbrConfig"] = None,
                        repair: Optional["RepairConfig"] = None,
                        fast_path: Optional["FlowLevelConfig"] = None,
                        ) -> PairRunResult:
    """Run the simultaneous-stream methodology for one clip pair.

    Args:
        seed: fully determines the run (topology randomness, server
            packetization draws, jitter).
        conditions: override the sampled network conditions.
        telemetry: optional facade; bound to this run's simulator so
            every instrumented layer (links, IP, pacers, buffers)
            reports into it.
        scenario: optional fault schedule.  Attaching one also arms the
            whole robustness stack — failure-aware routing, TCP
            retransmission, server media scaling, and player graceful
            degradation — none of which is active (or costs a single
            scheduled event) on a plain run.
        validate: optional :class:`~repro.validate.checker.RunValidator`;
            its invariant sweep runs once the streams are done (after
            the post-run stability check, before results assemble).
            Validation schedules nothing, so the run itself is
            byte-identical with or without it.
        cc: optional :class:`~repro.cc.CcConfig`.  A non-null config
            arms the congestion-control stack: receiver reports flow at
            the config's feedback interval, payloads carry send stamps,
            and a per-session controller throttles each pacer.  ``None``
            — or the null controller — arms *nothing*, keeping the run
            byte-identical to the 2002 code path.
        abr: optional :class:`~repro.cc.AbrConfig`.  Replaces both
            2002 server/player pairs with the segment-ladder ABR
            transport (same stats schema, same REAL/WMP labels).
            Mutually exclusive with ``cc``.
        repair: optional :class:`~repro.repair.RepairConfig`.  A
            non-null config arms the loss-repair stack on both 2002
            server/player pairs: servers emit XOR parity and answer
            NACKs, players decode and request retransmissions.
            ``None`` — or the null config — arms nothing, keeping the
            run byte-identical to the unrepaired code path.  The ABR
            transport has its own segment retry loop and never arms
            repair.
        fast_path: optional
            :class:`~repro.netsim.flowlevel.FlowLevelConfig`.  Delivers
            analytically-tractable packet trains in closed form instead
            of event-per-packet (see :mod:`repro.netsim.flowlevel`),
            falling back to packet-level per train whenever contention,
            loss, faults, cross traffic, or an active congestion
            controller make the model invalid.  ``None`` (the default)
            keeps the run byte-identical to a pre-fast-path build.
            Mutually exclusive with ``abr`` and an armed ``repair``
            (their control loops key on per-packet timing that the
            analytic model does not reproduce).

    Raises:
        ExperimentError: if a stream never finishes within the safety
            horizon (indicates a modeling bug, not a network condition).
            Under a fault scenario, congestion control, or ABR an
            unfinished stream is an expected outcome and is finalized
            deterministically instead.
        ValidationError: if ``validate`` finds violations and is
            configured to raise.
    """
    if cc is not None and abr is not None:
        raise ExperimentError(
            "cc and abr are mutually exclusive transports; pick one")
    cc_armed = cc is not None and not cc.is_null
    repair_armed = (repair is not None and not repair.is_null
                    and abr is None)
    if fast_path is not None and abr is not None:
        raise ExperimentError(
            "fast_path and abr are mutually exclusive: the ABR request "
            "loop keys on per-segment timing the analytic model does "
            "not reproduce")
    if fast_path is not None and repair_armed:
        raise ExperimentError(
            "fast_path requires a null repair config: loss repair only "
            "matters on lossy paths, which the fast path refuses anyway")
    sim = Simulator(seed=seed, telemetry=telemetry, validate=validate,
                    fast_path=fast_path)
    if conditions is None:
        conditions = sample_conditions(sim.streams.stream("conditions"))
    topology = build_path_topology(
        sim, hop_count=conditions.hop_count, rtt=conditions.rtt,
        loss_probability=conditions.loss_probability,
        jitter_std=conditions.jitter_std)

    real_host, wmp_host = topology.servers[0], topology.servers[1]
    if scenario is not None:
        # Robustness stack, armed only for fault runs so that plain
        # runs stay event-for-event identical to the pre-fault code.
        reliability = TcpReliability()
        for node in (topology.client, real_host, wmp_host):
            node.tcp.reliability = reliability
        RouteManager(sim, [topology.client] + list(topology.routers)
                     + list(topology.servers)).attach()
    if abr is not None:
        from repro.media.clip import PlayerFamily
        from repro.servers.abr import AbrServer

        # The ABR ladder *is* the adaptation mechanism; the 2002
        # media-scaling policy never rides along.
        real_server = AbrServer(real_host, family=PlayerFamily.REAL,
                                config=abr)
        wms = AbrServer(wmp_host, family=PlayerFamily.WMP, config=abr)
    else:
        scaling = MediaScalingPolicy if scenario is not None else None
        cc_factory = cc.build if cc_armed else None
        repair_factory = None
        if repair_armed:
            from repro.repair.sender import SenderRepair

            repair_factory = lambda: SenderRepair(repair)  # noqa: E731
        real_server = RealServer(real_host, scaling_policy_factory=scaling,
                                 cc_factory=cc_factory,
                                 repair_factory=repair_factory)
        wms = WindowsMediaServer(wmp_host, scaling_policy_factory=scaling,
                                 cc_factory=cc_factory,
                                 repair_factory=repair_factory)
    real_server.add_clip(pair.real)
    wms.add_clip(pair.wmp)

    # Section II.D: verify the path before the run.
    ping_before = run_ping(topology.client, real_host.address)
    tracert_report = run_tracert(topology.client, real_host.address,
                                 probes_per_hop=1)

    sniffer = Sniffer(topology.client).start()
    robustness = PlayerRobustness() if scenario is not None else None
    feedback = 1.0 if scenario is not None else None
    if cc_armed:
        # Congestion control needs the report loop even on clean runs.
        feedback = cc.feedback_interval
    if abr is not None:
        from repro.media.clip import PlayerFamily
        from repro.players.abrtracker import AbrTracker

        # ABR always keeps the watchdog armed: a lost segment-boundary
        # datagram would otherwise park the request loop forever.
        abr_robustness = robustness or PlayerRobustness()
        real_player = AbrTracker(topology.client, real_host.address,
                                 family=PlayerFamily.REAL, config=abr,
                                 preroll_seconds=preroll_seconds,
                                 feedback_interval=feedback or 1.0,
                                 robustness=abr_robustness)
        wmp_player = AbrTracker(topology.client, wmp_host.address,
                                family=PlayerFamily.WMP, config=abr,
                                preroll_seconds=preroll_seconds,
                                feedback_interval=feedback or 1.0,
                                robustness=abr_robustness)
    else:
        player_repair = repair if repair_armed else None
        real_player = RealTracker(topology.client, real_host.address,
                                  preroll_seconds=preroll_seconds,
                                  feedback_interval=feedback,
                                  robustness=robustness,
                                  repair=player_repair)
        wmp_player = MediaTracker(topology.client, wmp_host.address,
                                  preroll_seconds=preroll_seconds,
                                  feedback_interval=feedback,
                                  robustness=robustness,
                                  repair=player_repair)
    real_player.play(pair.real.title)
    wmp_player.play(pair.wmp.title)

    if scenario is not None:
        FaultController(
            sim, scenario,
            links=_fault_links(topology, conditions),
            servers={"real": real_server, "wmp": wms},
            surge_endpoints=(wmp_host, topology.client),
            reference_duration=clip_set.duration).arm()

    horizon = sim.now + clip_set.duration * 2.0 + 120.0
    sim.run(until=horizon)
    if not (real_player.done and wmp_player.done):
        if scenario is None and abr is None and not cc_armed:
            raise ExperimentError(
                f"streams did not finish by t={horizon:.0f}s for "
                f"set {clip_set.number} {pair.band.value}")
        # A fault, a throttling controller, or a lost ABR boundary can
        # legitimately leave a stream unfinished; close the books
        # deterministically (eos_timeout event, stop at last arrival).
        for player in (real_player, wmp_player):
            if not player.done:
                player.finalize()
    trace = sniffer.stop()

    # ...and verify it again after (Section II.D).
    ping_after = run_ping(topology.client, real_host.address)
    tracert_after = run_tracert(topology.client, real_host.address,
                                probes_per_hop=1)
    stability = verify_stability(ping_before, ping_after,
                                 tracert_report, tracert_after)

    if validate is not None:
        validate.check_run(run=f"set{clip_set.number}-{pair.band.short}",
                           seed=seed)

    return PairRunResult(
        set_number=clip_set.number, genre=clip_set.genre, band=pair.band,
        conditions=conditions, real_clip=pair.real, wmp_clip=pair.wmp,
        real_stats=real_player.stats, wmp_stats=wmp_player.stats,
        trace=trace, real_server=real_host.address,
        wmp_server=wmp_host.address, ping_before=ping_before,
        ping_after=ping_after, tracert=tracert_report,
        tracert_after=tracert_after, stability=stability,
        fastpath=(sim.fast_path.summary()
                  if sim.fast_path is not None else None))


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` request: 0 means one worker per CPU.

    Raises:
        ExperimentError: if ``jobs`` is negative.
    """
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def study_conditions(seed: int, index: int,
                     loss_probability: float = 0.0) -> NetworkConditions:
    """The network conditions run ``index`` of a sweep samples.

    Derived straight from ``RandomStreams(seed + index)`` — the same
    named stream a run's own simulator would hand out, so the draws are
    identical to sampling inside the run, and any process (sequential
    loop, pool worker, a test) can reproduce them independently.
    """
    rng = RandomStreams(seed + index).stream("conditions")
    return sample_conditions(rng, loss_probability=loss_probability)


def run_study(library: Optional[ClipLibrary] = None, seed: int = 2002,
              duration_scale: float = 1.0,
              loss_probability: float = 0.0,
              telemetry: Optional[Telemetry] = None,
              jobs: int = 1,
              scenario: Optional[FaultScenario] = None,
              validate: Optional["RunValidator"] = None,
              cc: Optional["CcConfig"] = None,
              abr: Optional["AbrConfig"] = None,
              repair: Optional["RepairConfig"] = None,
              fast_path: Optional["FlowLevelConfig"] = None,
              min_parallel_runs: int = PARALLEL_MIN_RUNS,
              stream: Optional[StreamingSummary] = None,
              progress: Optional[ProgressCallback] = None) -> StudyResults:
    """Run the full Table 1 sweep (the corpus behind every figure).

    Args:
        library: clip library; defaults to Table 1.
        seed: master seed; run ``i`` uses ``seed + i``.
        duration_scale: shorten clips (tests) or keep them full (1.0).
        loss_probability: middle-link loss for congestion studies.
        telemetry: optional shared facade.  One registry and one event
            bus serve every pair run; a ``run=<label>`` context label
            keeps the runs' instruments apart, and the facade comes
            back on ``StudyResults.telemetry``.
        jobs: worker processes to fan the pair runs across (each run
            is an independent simulation fully determined by ``seed +
            index``).  1 (the default) runs in-process; 0 means one
            worker per CPU.  Results are identical to sequential
            execution — runs merge back in library order, and worker
            telemetry folds into the shared facade post-hoc (the
            facade's profiler, being wall-clock, stays parent-only).
        scenario: optional fault schedule applied to *every* pair run
            of the sweep (the scenario is pure data, so workers rebuild
            their fault controllers from it independently).
        validate: optional :class:`~repro.validate.checker.RunValidator`
            shared by every pair run of the sweep; each run gets an
            invariant sweep at its end.  Sequential execution only —
            the validator holds live object references and cannot
            cross a process boundary.
        cc: optional :class:`~repro.cc.CcConfig` applied to every pair
            run (see :func:`run_pair_experiment`).
        abr: optional :class:`~repro.cc.AbrConfig`: run the sweep over
            the ABR transport instead of the 2002 servers.
        repair: optional :class:`~repro.repair.RepairConfig` applied to
            every pair run (see :func:`run_pair_experiment`); pure
            data, so pool workers arm their repair stacks from it
            independently.
        fast_path: optional
            :class:`~repro.netsim.flowlevel.FlowLevelConfig` applied to
            every pair run (see :func:`run_pair_experiment`); a frozen
            dataclass of pure data, so pool workers build their own
            directors from it independently.
        min_parallel_runs: sweeps smaller than this auto-downgrade a
            ``jobs > 1`` request to sequential execution (fork overhead
            beats the win on small sweeps); the decision lands on
            ``StudyResults.execution``.  Pass 0 to force the pool.
        stream: optional :class:`~repro.telemetry.streaming.StreamingSummary`
            to fold the sweep into online.  Each pair run folds into a
            fresh ``stream.spawn()`` via a per-run bus sink (no event
            buffering), and the per-run summaries merge into ``stream``
            in library order — byte-identical across sequential,
            parallel, and cached execution.  Works with or without a
            ``telemetry`` facade; the merged summary also lands on
            ``StudyResults.streaming``.
        progress: optional heartbeat consumer (see
            :mod:`repro.experiments.progress`); called with one
            :class:`Heartbeat` at each pair run's start and end, from
            the sequential loop or relayed from pool workers.

    Raises:
        ExperimentError: for ``validate`` combined with ``jobs > 1``.
    """
    if library is None:
        library = build_table1_library(duration_scale=duration_scale)
    jobs = resolve_jobs(jobs)
    pairs = library.all_pairs()
    if validate is not None and jobs > 1:
        raise ExperimentError(
            "validation requires sequential execution (jobs=1): the "
            "validator inspects live simulation objects and cannot "
            "cross a worker-process boundary")
    execution = "sequential"
    if jobs > 1 and len(pairs) > 1:
        if len(pairs) >= min_parallel_runs:
            from repro.experiments.parallel import run_study_parallel

            results = run_study_parallel(library, seed=seed,
                                         loss_probability=loss_probability,
                                         telemetry=telemetry, jobs=jobs,
                                         scenario=scenario, cc=cc, abr=abr,
                                         repair=repair, fast_path=fast_path,
                                         stream=stream, progress=progress)
            results.execution = f"parallel jobs={jobs}"
            return results
        execution = (f"sequential (auto-downgraded from jobs={jobs}: "
                     f"{len(pairs)} runs < {min_parallel_runs})")
    results = StudyResults(telemetry=telemetry, execution=execution)
    # A streamed sweep needs a live bus even when the caller brought no
    # facade: an internal one with no sinks stays inactive except while
    # a per-run streaming sink is attached.
    facade = telemetry
    if stream is not None and facade is None:
        facade = Telemetry(sinks=[])
    total = len(pairs)
    for index, (clip_set, pair) in enumerate(pairs):
        conditions = study_conditions(seed, index,
                                      loss_probability=loss_probability)
        label = f"set{clip_set.number}-{pair.band.short}"
        if telemetry is not None:
            telemetry.set_context(run=label)
        if progress is not None:
            progress(Heartbeat(index=index, total=total, label=label,
                               phase=PHASE_START))
        per_run = None
        sink = None
        span_base = 0
        if stream is not None:
            per_run = stream.spawn()
            sink = StreamingSink(per_run)
            if facade.spans is not None:
                span_base = len(facade.spans.spans)
            facade.bus.attach(sink)
        try:
            results.runs.append(run_pair_experiment(
                clip_set, pair, seed=seed + index, conditions=conditions,
                telemetry=facade, scenario=scenario, validate=validate,
                cc=cc, abr=abr, repair=repair, fast_path=fast_path))
        finally:
            if sink is not None:
                facade.bus.detach(sink)
        if per_run is not None:
            if facade.spans is not None:
                per_run.fold_spans(facade.spans.spans[span_base:])
            stream.merge(per_run)
        if progress is not None:
            progress(Heartbeat(
                index=index, total=total, label=label, phase=PHASE_DONE,
                sim_time_frac=1.0,
                events_folded=per_run.events_folded if per_run else 0,
                faults_fired=(per_run.rollup.faults_fired
                              if per_run else 0),
                violations=(len(validate.violations)
                            if validate is not None else 0),
                rollup=per_run.rollup.as_dict() if per_run else None))
    if telemetry is not None:
        telemetry.clear_context()
    results.streaming = stream
    return results

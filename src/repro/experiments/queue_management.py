"""Queue management versus unresponsive media (the paper's framing).

The paper's introduction motivates the whole study with router queue
management: "Research that attempts to deal with unresponsive traffic
[CD01, FKSS01, MFW01, SSZ98] often models unresponsive flows as
transmitting data at a constant packet size, constant packet rate...
Realistic modeling of streaming media at the network layer will
facilitate more effective network techniques that handle unresponsive
traffic flows."

This experiment closes that loop with the library's own realistic
flows: both players stream through a congested bottleneck governed by
either a drop-tail FIFO or RED, and the run reports what each
discipline does to each product — including the fragmentation
amplification (a dropped fragment wastes its whole ADU) that only a
faithful packet-level model exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import units
from repro.errors import ExperimentError
from repro.media.clip import Clip, ClipEncoding, PlayerFamily
from repro.netsim.crosstraffic import OnOffParetoSource
from repro.netsim.engine import Simulator
from repro.netsim.queues import DropTailQueue, RedQueue
from repro.netsim.topology import build_path_topology
from repro.players.mediatracker import MediaTracker
from repro.players.realtracker import RealTracker
from repro.servers.realserver import RealServer
from repro.servers.wms import WindowsMediaServer


@dataclass(frozen=True)
class QueueStudyResult:
    """One discipline's outcome at the congested bottleneck."""

    discipline: str
    bottleneck_drops: int
    real_packets_lost: int
    wmp_packets_lost: int
    real_frame_loss_percent: float
    wmp_frame_loss_percent: float
    wasted_fragment_bytes: int
    real_fps: float
    wmp_fps: float


def run_queue_study(discipline: str, bottleneck_mbps: float = 1.0,
                    encoded_kbps: float = 307.2, duration: float = 40.0,
                    noise_mbps: float = 0.6,
                    seed: int = 2002) -> QueueStudyResult:
    """Stream both players through a congested, managed bottleneck.

    Args:
        discipline: ``"droptail"`` or ``"red"``.
        bottleneck_mbps: the managed link's rate; with two ~300 Kbps
            media flows plus bursty noise it saturates during noise
            bursts.

    Raises:
        ExperimentError: for an unknown discipline or broken run.
    """
    capacity = 32 * 1024  # small router buffer: queue pressure matters
    if discipline == "droptail":
        def queue_factory():
            return DropTailQueue(capacity_bytes=capacity)
    elif discipline == "red":
        red_rng_holder: Dict[str, object] = {}

        def queue_factory():
            rng = red_rng_holder.setdefault(
                "rng", sim.streams.stream("red"))
            return RedQueue(capacity_bytes=capacity, min_threshold=0.15,
                            max_threshold=0.7, max_drop_probability=0.2,
                            rng=rng)
    else:
        raise ExperimentError(f"unknown discipline {discipline!r}")

    sim = Simulator(seed=seed)
    path = build_path_topology(
        sim, hop_count=8, rtt=0.040,
        bottleneck_bps=units.mbps(bottleneck_mbps))
    # Replace the bottleneck's queues with the chosen discipline: the
    # topology marks the middle link as the throttled one.
    middle = next(link for link in path.links
                  if link.bandwidth_bps == units.mbps(bottleneck_mbps))
    middle._forward._queue = queue_factory()
    middle._reverse._queue = queue_factory()

    real_server = RealServer(path.servers[0])
    real_server.add_clip(Clip(
        title="r", genre="T", duration=duration,
        encoding=ClipEncoding(family=PlayerFamily.REAL,
                              encoded_kbps=encoded_kbps * 0.88,
                              advertised_kbps=encoded_kbps)))
    wms = WindowsMediaServer(path.servers[1])
    wms.add_clip(Clip(
        title="m", genre="T", duration=duration,
        encoding=ClipEncoding(family=PlayerFamily.WMP,
                              encoded_kbps=encoded_kbps,
                              advertised_kbps=encoded_kbps)))
    if noise_mbps > 0:
        OnOffParetoSource(sim, path.servers[1], path.client,
                          rate_bps=units.mbps(noise_mbps), mean_on=0.8,
                          mean_off=0.8, port=9,
                          rng=sim.streams.stream("noise")).start()

    real_player = RealTracker(path.client, path.servers[0].address)
    wmp_player = MediaTracker(path.client, path.servers[1].address)
    real_player.play("r")
    wmp_player.play("m")
    sim.run(until=duration * 4 + 120.0)
    for player in (real_player, wmp_player):
        if not player.done:
            player.finalize()

    # Congestion drops happen in the bottleneck's client-bound queue;
    # media flows server->client, i.e. the direction transmitted by
    # the server-side endpoint (middle.b on the topology's chain).
    drops = (middle.queue_stats(middle.b).dropped
             + middle.queue_stats(middle.a).dropped)

    return QueueStudyResult(
        discipline=discipline,
        bottleneck_drops=drops,
        real_packets_lost=real_player.stats.packets_lost,
        wmp_packets_lost=wmp_player.stats.packets_lost,
        real_frame_loss_percent=real_player.stats.frame_loss_percent,
        wmp_frame_loss_percent=wmp_player.stats.frame_loss_percent,
        wasted_fragment_bytes=path.client.ip.stats.wasted_fragment_bytes,
        real_fps=real_player.stats.average_fps,
        wmp_fps=wmp_player.stats.average_fps)

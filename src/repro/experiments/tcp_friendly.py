"""TCP-friendliness probe (the paper's proposed follow-up study).

Paper §VI: "Studies similar to this one under bandwidth constrained
conditions might help explore the feasibility of TCP-Friendliness (or,
more likely the lack of TCP-Friendliness) in commercial media players."

A UDP flow is TCP-friendly when its throughput does not exceed what a
conformant TCP would achieve on the same path, commonly estimated with
the simplified [FF99]/Padhye bound

    T = 1.22 * MTU / (RTT * sqrt(p))    [bytes/second]

This module runs one player over a lossy path, measures its delivered
rate, and reports the friendliness index (achieved / T): index > 1
means the flow takes more than a TCP's share.  With media scaling
enabled (see :mod:`repro.servers.scaling`) the player backs off
*somewhat*, which is exactly the paper's "more likely the lack of
TCP-Friendliness" expectation: scaling ladders are far coarser than
TCP's control law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Type

from repro import units
from repro.errors import ExperimentError
from repro.media.clip import Clip, ClipEncoding, PlayerFamily
from repro.netsim.engine import Simulator
from repro.netsim.topology import build_path_topology
from repro.players.base import StreamingClient
from repro.players.mediatracker import MediaTracker
from repro.players.realtracker import RealTracker
from repro.servers.base import StreamingServer
from repro.servers.realserver import RealServer
from repro.servers.scaling import MediaScalingPolicy
from repro.servers.wms import WindowsMediaServer


def tcp_friendly_rate_bps(rtt: float, loss_fraction: float,
                          mtu_bytes: int = units.DEFAULT_MTU_BYTES) -> float:
    """The simplified TCP-friendly rate bound, in bits/second.

    Raises:
        ExperimentError: for nonpositive RTT or loss outside (0, 1].
    """
    if rtt <= 0:
        raise ExperimentError("RTT must be positive")
    if not 0 < loss_fraction <= 1:
        raise ExperimentError("loss fraction must be in (0, 1]")
    bytes_per_second = 1.22 * mtu_bytes / (rtt * math.sqrt(loss_fraction))
    return bytes_per_second * 8.0


@dataclass
class FriendlinessResult:
    """Outcome of one probe run."""

    family: PlayerFamily
    encoded_kbps: float
    loss_probability: float
    rtt: float
    scaling_enabled: bool
    #: What the server pushed into the network (its offered load).
    offered_kbps: float
    #: What the application actually received after loss/reassembly.
    achieved_kbps: float
    tcp_friendly_kbps: float
    final_rate_scale: float

    @property
    def friendliness_index(self) -> float:
        """offered load / TCP-friendly bound; > 1 means the flow keeps
        pushing more than a conformant TCP would (unresponsive).

        Offered load is the right numerator: an unresponsive sender
        keeps loading the network even when fragmentation loss guts the
        *received* goodput — precisely the [FF99] hazard.
        """
        if self.tcp_friendly_kbps <= 0:
            return float("inf")
        if self.tcp_friendly_kbps == float("inf"):
            return 0.0
        return self.offered_kbps / self.tcp_friendly_kbps


_SERVERS = {
    PlayerFamily.REAL: (RealServer, RealTracker),
    PlayerFamily.WMP: (WindowsMediaServer, MediaTracker),
}


def run_probe(family: PlayerFamily, encoded_kbps: float,
              loss_probability: float, duration: float = 60.0,
              rtt: float = 0.060, scaling: bool = False,
              seed: int = 2002) -> FriendlinessResult:
    """Stream one clip over a lossy path; measure friendliness.

    Args:
        scaling: enable server-side media scaling fed by 1-second
            receiver reports.

    Raises:
        ExperimentError: if the stream produces no measurable traffic.
    """
    sim = Simulator(seed=seed)
    path = build_path_topology(sim, hop_count=17, rtt=rtt,
                               loss_probability=loss_probability)
    server_class, player_class = _SERVERS[family]
    factory = MediaScalingPolicy if scaling else None
    server: StreamingServer = server_class(
        path.server, scaling_policy_factory=factory)
    clip = Clip(title="probe", genre="Probe", duration=duration,
                encoding=ClipEncoding(family=family,
                                      encoded_kbps=encoded_kbps,
                                      advertised_kbps=encoded_kbps))
    server.add_clip(clip)
    player: StreamingClient = player_class(
        path.client, path.server.address,
        feedback_interval=1.0 if scaling else None)
    player.play("probe")
    sim.run(until=duration * 4 + 120.0)
    if not player.done:
        player.finalize()
    stats = player.stats
    if stats is None or not stats.receipts:
        raise ExperimentError("probe stream delivered nothing")
    duration_seen = stats.streaming_duration
    if duration_seen is None or duration_seen <= 0:
        last = max(r.network_time for r in stats.receipts)
        duration_seen = max(last - (stats.first_media_at or 0.0), 1e-9)
    achieved_kbps = stats.bytes_received * 8.0 / duration_seen / 1000.0

    pacer = server.sessions[1].pacer
    offered_kbps = achieved_kbps
    if pacer is not None and pacer.streaming_duration:
        offered_kbps = (pacer.bytes_sent * 8.0
                        / pacer.streaming_duration / 1000.0)

    final_scale = 1.0
    controllers = list(server.scaling_controllers.values())
    if controllers:
        final_scale = controllers[0].policy.current_scale

    friendly_kbps = (tcp_friendly_rate_bps(rtt, loss_probability) / 1000.0
                     if loss_probability > 0 else float("inf"))
    return FriendlinessResult(
        family=family, encoded_kbps=encoded_kbps,
        loss_probability=loss_probability, rtt=rtt,
        scaling_enabled=scaling, offered_kbps=offered_kbps,
        achieved_kbps=achieved_kbps,
        tcp_friendly_kbps=friendly_kbps, final_rate_scale=final_scale)

"""A lightweight profiler for the discrete-event loop.

When attached (via :class:`repro.telemetry.core.Telemetry`), the
simulator routes event execution through :meth:`SimProfiler.run_event`,
which times each callback with the wall clock, aggregates cost by
callback name, and samples heap depth every ``sample_interval`` events.
The numbers answer the optimization questions the ROADMAP keeps asking
— where do the cycles go, how deep does the heap get, how many events
per wall second does the engine sustain — without touching the
unprofiled fast path at all (the engine picks its loop once per
``run`` call, so a disabled profiler costs one ``None`` check).

Profiler output is wall-clock-derived and therefore *not* part of the
deterministic export contract; exporters keep it out of the seeded
JSON/CSV artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple


def _callback_name(callback: Callable[..., object]) -> str:
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = getattr(type(callback), "__qualname__", repr(callback))
    module = getattr(callback, "__module__", "") or ""
    if module.startswith("repro."):
        module = module[len("repro."):]
    return f"{module}.{name}" if module else name


@dataclass
class CallbackCost:
    """Aggregated wall-clock cost of one callback kind."""

    calls: int = 0
    wall_seconds: float = 0.0

    @property
    def mean_microseconds(self) -> float:
        if not self.calls:
            return 0.0
        return self.wall_seconds / self.calls * 1e6


@dataclass
class ProfileReport:
    """Everything one profiled ``Simulator.run`` window measured."""

    events_executed: int = 0
    wall_seconds: float = 0.0
    max_heap_depth: int = 0
    heap_samples: List[Tuple[int, int]] = field(default_factory=list)
    callbacks: Dict[str, CallbackCost] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def hottest(self, limit: int = 10) -> List[Tuple[str, CallbackCost]]:
        """Callback kinds ordered by total wall cost, costliest first."""
        ranked = sorted(self.callbacks.items(),
                        key=lambda item: item[1].wall_seconds, reverse=True)
        return ranked[:limit]

    def render(self, limit: int = 10) -> str:
        lines = [
            f"events executed:  {self.events_executed}",
            f"wall time:        {self.wall_seconds:.3f}s "
            f"({self.events_per_second:,.0f} events/s)",
            f"max heap depth:   {self.max_heap_depth}",
        ]
        if self.callbacks:
            lines.append("hottest callbacks (total wall, mean per call):")
            for name, cost in self.hottest(limit):
                lines.append(
                    f"  {name:<48} {cost.wall_seconds * 1000:8.2f} ms"
                    f"  {cost.mean_microseconds:8.1f} us x{cost.calls}")
        return "\n".join(lines)


class SimProfiler:
    """Samples the event loop; one instance accumulates across runs.

    Args:
        sample_interval: heap depth is recorded every this-many events
            (depth sampling is cheap but not free; 1024 keeps overhead
            under a percent on the microbenchmarks).
    """

    def __init__(self, sample_interval: int = 1024) -> None:
        if sample_interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval = sample_interval
        self.report = ProfileReport()
        self._since_sample = 0

    def run_event(self, callback: Callable[..., object], args: tuple,
                  heap_depth: int) -> None:
        """Execute one event under the stopwatch."""
        report = self.report
        if heap_depth > report.max_heap_depth:
            report.max_heap_depth = heap_depth
        self._since_sample += 1
        if self._since_sample >= self.sample_interval:
            self._since_sample = 0
            report.heap_samples.append((report.events_executed, heap_depth))
        started = time.perf_counter()
        callback(*args)
        elapsed = time.perf_counter() - started
        report.events_executed += 1
        report.wall_seconds += elapsed
        name = _callback_name(callback)
        cost = report.callbacks.get(name)
        if cost is None:
            cost = report.callbacks[name] = CallbackCost()
        cost.calls += 1
        cost.wall_seconds += elapsed

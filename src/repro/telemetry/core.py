"""The `Telemetry` facade: one handle for registry + bus + profiler.

Instrumented layers never see the parts individually — they hold an
optional ``Telemetry`` (usually via ``sim.telemetry``) and call
``tel.emit(...)`` / ``tel.counter(...)`` behind a ``None`` check, so
the disabled path costs a single attribute load.  The facade carries
the simulated clock: :class:`~repro.netsim.engine.Simulator` binds
itself on construction, after which ``tel.now()`` is the simulation
time and every metric sample and trace event is stamped with it.

One facade may outlive many simulators (the study runner rebinds it to
each pair run's fresh ``Simulator``), which is what "a shared registry
across the sweep" means in practice: per-run context labels
(:meth:`set_context`) keep the runs' instruments distinct inside the
one registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.telemetry.events import TraceEventBus
from repro.telemetry.profiler import SimProfiler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import MemorySink
from repro.telemetry.spans import SpanRecorder


@dataclass
class TelemetrySnapshot:
    """Everything one worker's telemetry saw, as plain picklable data.

    The facade itself cannot cross a process boundary (it binds the
    simulator clock as a closure), so parallel study workers ship one
    of these back instead: the registry's instruments, the full event
    stream in emission order as ``(type, time, fields)`` rows, and the
    span forest as flat rows with worker-local ids.  Rows rather than
    event/span objects because a study moves hundreds of thousands of
    them: tuples pickle an order of magnitude faster.
    :meth:`Telemetry.merge` folds a snapshot into a live facade.
    """

    registry: MetricsRegistry
    events: List[Tuple[str, float, Tuple]] = field(default_factory=list)
    spans: List[Tuple] = field(default_factory=list)
    #: The worker's online-folded per-run summary (see
    #: :mod:`repro.telemetry.streaming`), shipped pre-reduced so the
    #: parent merges O(1) state instead of re-folding the event rows.
    #: ``None`` when the study did not request streaming aggregation.
    streaming: Optional[object] = None


class Telemetry:
    """Aggregate handle threaded through the instrumented layers.

    Args:
        registry: metrics home; a fresh one by default.
        bus: trace-event bus; defaults to a bus with one
            :class:`~repro.telemetry.sinks.MemorySink` ring attached.
        profiler: optional event-loop profiler; when present, every
            ``Simulator.run`` on a bound simulator is profiled.
        spans: optional :class:`~repro.telemetry.spans.SpanRecorder`;
            when present, pacers/IP/links/queues/players record the
            per-ADU provenance forest.  Must be installed before any
            topology is built (layers cache the handle, like the rest
            of the facade).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 bus: Optional[TraceEventBus] = None,
                 profiler: Optional[SimProfiler] = None,
                 sinks: Optional[Iterable[object]] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if bus is None:
            bus = TraceEventBus(sinks=sinks if sinks is not None
                                else [MemorySink()])
        elif sinks:
            for sink in sinks:
                bus.attach(sink)
        self.bus = bus
        self.profiler = profiler
        self.spans = spans
        self._clock = lambda: 0.0

    # ------------------------------------------------------------------
    # Clock binding
    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Adopt ``sim``'s clock; called by ``Simulator.__init__``."""
        self._clock = lambda: sim.now

    def now(self) -> float:
        """Current simulated time per the bound simulator."""
        return self._clock()

    # ------------------------------------------------------------------
    # Run scoping
    # ------------------------------------------------------------------
    def set_context(self, **labels: object) -> None:
        """Scope subsequent metrics and events (e.g. ``run="set1-l"``)."""
        self.registry.set_context(**labels)
        self.bus.set_context(**labels)
        if self.spans is not None:
            self.spans.set_context(**labels)

    def clear_context(self) -> None:
        self.registry.clear_context()
        self.bus.clear_context()
        if self.spans is not None:
            self.spans.clear_context()

    # ------------------------------------------------------------------
    # Emission shortcuts
    # ------------------------------------------------------------------
    def emit(self, event_type: str, **fields: object) -> None:
        """Publish a trace event stamped with the simulated clock."""
        self.bus.emit(event_type, self._clock(), **fields)

    def counter(self, name: str, **labels: object):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, bounds=None, **labels: object):
        return self.registry.histogram(name, bounds=bounds, **labels)

    def sample_gauge(self, name: str, value: float, **labels: object) -> None:
        """Record a gauge sample at the current simulated time."""
        self.registry.gauge(name, **labels).set(value, self._clock())

    # ------------------------------------------------------------------
    # Cross-process snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        """Freeze this facade's state as plain picklable data.

        Events come from the first attached :class:`MemorySink` (a
        worker facade uses a single unbounded one, so nothing is
        missing); spans come from the installed recorder, ids still
        worker-local.  The profiler is deliberately excluded — its
        wall-clock numbers are per-process and never exported.
        """
        return TelemetrySnapshot(
            registry=self.registry,
            events=[(event.type, event.time, event.fields)
                    for event in self.memory_events()],
            spans=(self.spans.export_rows()
                   if self.spans is not None else []))

    def merge(self, snapshot: TelemetrySnapshot) -> int:
        """Fold a worker snapshot into this facade.

        Metrics merge into the registry, events replay through the bus
        (renumbered with this bus's sequence, delivered to every
        attached sink), and spans are adopted with their ids rebased
        past this recorder's high-water mark.  Merging the per-run
        snapshots of a parallel study in library order reproduces the
        sequential sweep's registry, event stream, and span forest
        exactly.

        Returns:
            The span-id offset applied (0 when no spans merged), for
            rebasing trace records that captured worker-local ids.
        """
        self.registry.merge(snapshot.registry)
        if snapshot.events:
            self.bus.replay(snapshot.events)
        if snapshot.spans and self.spans is not None:
            return self.spans.absorb_rows(snapshot.spans)
        return 0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def memory_events(self):
        """Events retained by the first MemorySink, if one is attached."""
        for sink in self.bus._sinks:
            if isinstance(sink, MemorySink):
                return list(sink.events)
        return []

    def dropped_events(self) -> int:
        """Events lost to memory-ring truncation across attached sinks.

        Nonzero means every event-derived view (timelines, summaries,
        replays) is missing the *oldest* part of the stream — exporters
        and the CLI surface this so truncation never looks like a
        quiet run.
        """
        return sum(sink.dropped for sink in self.bus._sinks
                   if isinstance(sink, MemorySink))

    def close(self) -> None:
        self.bus.close()

"""The `Telemetry` facade: one handle for registry + bus + profiler.

Instrumented layers never see the parts individually — they hold an
optional ``Telemetry`` (usually via ``sim.telemetry``) and call
``tel.emit(...)`` / ``tel.counter(...)`` behind a ``None`` check, so
the disabled path costs a single attribute load.  The facade carries
the simulated clock: :class:`~repro.netsim.engine.Simulator` binds
itself on construction, after which ``tel.now()`` is the simulation
time and every metric sample and trace event is stamped with it.

One facade may outlive many simulators (the study runner rebinds it to
each pair run's fresh ``Simulator``), which is what "a shared registry
across the sweep" means in practice: per-run context labels
(:meth:`set_context`) keep the runs' instruments distinct inside the
one registry.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.telemetry.events import TraceEventBus
from repro.telemetry.profiler import SimProfiler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import MemorySink
from repro.telemetry.spans import SpanRecorder


class Telemetry:
    """Aggregate handle threaded through the instrumented layers.

    Args:
        registry: metrics home; a fresh one by default.
        bus: trace-event bus; defaults to a bus with one
            :class:`~repro.telemetry.sinks.MemorySink` ring attached.
        profiler: optional event-loop profiler; when present, every
            ``Simulator.run`` on a bound simulator is profiled.
        spans: optional :class:`~repro.telemetry.spans.SpanRecorder`;
            when present, pacers/IP/links/queues/players record the
            per-ADU provenance forest.  Must be installed before any
            topology is built (layers cache the handle, like the rest
            of the facade).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 bus: Optional[TraceEventBus] = None,
                 profiler: Optional[SimProfiler] = None,
                 sinks: Optional[Iterable[object]] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if bus is None:
            bus = TraceEventBus(sinks=sinks if sinks is not None
                                else [MemorySink()])
        elif sinks:
            for sink in sinks:
                bus.attach(sink)
        self.bus = bus
        self.profiler = profiler
        self.spans = spans
        self._clock = lambda: 0.0

    # ------------------------------------------------------------------
    # Clock binding
    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Adopt ``sim``'s clock; called by ``Simulator.__init__``."""
        self._clock = lambda: sim.now

    def now(self) -> float:
        """Current simulated time per the bound simulator."""
        return self._clock()

    # ------------------------------------------------------------------
    # Run scoping
    # ------------------------------------------------------------------
    def set_context(self, **labels: object) -> None:
        """Scope subsequent metrics and events (e.g. ``run="set1-l"``)."""
        self.registry.set_context(**labels)
        self.bus.set_context(**labels)
        if self.spans is not None:
            self.spans.set_context(**labels)

    def clear_context(self) -> None:
        self.registry.clear_context()
        self.bus.clear_context()
        if self.spans is not None:
            self.spans.clear_context()

    # ------------------------------------------------------------------
    # Emission shortcuts
    # ------------------------------------------------------------------
    def emit(self, event_type: str, **fields: object) -> None:
        """Publish a trace event stamped with the simulated clock."""
        self.bus.emit(event_type, self._clock(), **fields)

    def counter(self, name: str, **labels: object):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: object):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, bounds=None, **labels: object):
        return self.registry.histogram(name, bounds=bounds, **labels)

    def sample_gauge(self, name: str, value: float, **labels: object) -> None:
        """Record a gauge sample at the current simulated time."""
        self.registry.gauge(name, **labels).set(value, self._clock())

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def memory_events(self):
        """Events retained by the first MemorySink, if one is attached."""
        for sink in self.bus._sinks:
            if isinstance(sink, MemorySink):
                return list(sink.events)
        return []

    def close(self) -> None:
        self.bus.close()

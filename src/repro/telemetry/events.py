"""The structured trace-event bus.

Where the registry (:mod:`repro.telemetry.registry`) aggregates,
the bus *narrates*: each instrumented layer emits typed events —
``packet_enqueued``, ``queue_drop``, ``fragment_emitted``,
``rebuffer_start`` — timestamped in simulated seconds and stamped with
a monotonic sequence number, so a study run can be replayed as a
totally-ordered timeline.  Events fan out to pluggable sinks (see
:mod:`repro.telemetry.sinks`); when no sink is live the bus refuses to
even construct the event object, keeping the hot path allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

# ----------------------------------------------------------------------
# Event taxonomy.  Constants rather than an Enum: emit sites compare and
# serialize these millions of times, and a str is both.
# ----------------------------------------------------------------------

#: A packet was accepted into a link-direction queue.
PACKET_ENQUEUED = "packet_enqueued"
#: A queue rejected a packet (drop-tail overflow or RED early drop).
QUEUE_DROP = "queue_drop"
#: The loss model discarded a packet in flight.
PACKET_LOSS = "packet_loss"
#: A packet finished propagation and reached its sink node.
PACKET_DELIVERED = "packet_delivered"
#: The sender's IP layer sliced a datagram into MTU-sized fragments.
FRAGMENT_EMITTED = "fragment_emitted"
#: A reassembly buffer gave up waiting for missing fragments.
REASSEMBLY_TIMEOUT = "reassembly_timeout"
#: A server began streaming a clip (one per PLAY).
STREAM_START = "stream_start"
#: A pacer exhausted its clip and sent the end-of-stream marker.
STREAM_END = "stream_end"
#: A pacer changed its send rate (media scaling or burst->steady).
RATE_SWITCH = "rate_switch"
#: The client delay buffer reached its preroll target; playout begins.
PLAYOUT_START = "playout_start"
#: The delay buffer ran dry while playing.
REBUFFER_START = "rebuffer_start"
#: Media arrived again after an underrun; playback resumes.
REBUFFER_STOP = "rebuffer_stop"

# ----------------------------------------------------------------------
# Fault injection and recovery (repro.faults).
# ----------------------------------------------------------------------

#: The fault controller executed one scheduled fault event.
FAULT_INJECTED = "fault_injected"
#: A link direction went administratively down (packets now dropped).
LINK_DOWN = "link_down"
#: A down link came back up.
LINK_UP = "link_up"
#: A node dropped a packet because no route survived re-convergence.
NO_ROUTE_DROP = "no_route_drop"
#: The route manager finished recomputing tables after a link event.
ROUTE_RECONVERGED = "route_reconverged"
#: A reliable TCP connection retransmitted unacknowledged segments.
TCP_RETRANSMIT = "tcp_retransmit"
#: A reliable TCP connection gave up (retries exhausted / handshake).
TCP_ABORT = "tcp_abort"
#: A client keepalive went unanswered within its timeout.
KEEPALIVE_MISS = "keepalive_miss"
#: A client exhausted its keepalive retries; the session is dead.
SESSION_LOST = "session_lost"
#: The player's quality controller stepped down a level.
QUALITY_DOWNSHIFT = "quality_downshift"
#: The player's quality controller stepped back up a level.
QUALITY_UPSHIFT = "quality_upshift"
#: The stall watchdog ended a playback that stopped receiving media.
PLAYER_STALLED = "player_stalled"
#: End-of-stream never arrived; playback was closed by the timeout
#: fallback with a deterministic stop time.
EOS_TIMEOUT = "eos_timeout"
#: A server paused all live sessions (fault injection).
SERVER_PAUSED = "server_paused"
#: A paused server resumed its sessions.
SERVER_RESUMED = "server_resumed"
#: A server crashed: sessions dropped silently, no EOS, no TEARDOWN ack.
SERVER_CRASHED = "server_crashed"

# ----------------------------------------------------------------------
# Congestion control and adaptive bitrate (repro.cc).
# ----------------------------------------------------------------------

#: A cc session controller processed a receiver report: new pacing
#: rate / cwnd snapshot.
CC_STATE = "cc_state"
#: An ABR server began streaming one segment at a ladder rung.
ABR_SEGMENT = "abr_segment"
#: The ABR player switched ladder rungs between segments.
ABR_SWITCH = "abr_switch"

# ----------------------------------------------------------------------
# Loss repair and viewer experience (repro.repair).
# ----------------------------------------------------------------------

#: The sender closed an FEC group and emitted its XOR parity datagram.
FEC_PARITY_SENT = "fec_parity_sent"
#: The player sent a retransmission request for missing sequences.
NACK_SENT = "nack_sent"
#: The server retransmitted a media datagram from its send history.
RETRANSMIT_SENT = "retransmit_sent"
#: The player repaired a lost sequence (parity decode or RTX arrival).
REPAIR_RECOVERED = "repair_recovered"
#: The player gave up on a lost sequence (deadline passed or retries
#: exhausted) — the graceful-drop path.
REPAIR_ABANDONED = "repair_abandoned"
#: A finished playback published its deterministic per-viewer QoE
#: score (repair-armed runs only).
QOE_SCORE = "qoe_score"

ALL_EVENT_TYPES: Tuple[str, ...] = (
    PACKET_ENQUEUED, QUEUE_DROP, PACKET_LOSS, PACKET_DELIVERED,
    FRAGMENT_EMITTED, REASSEMBLY_TIMEOUT, STREAM_START, STREAM_END,
    RATE_SWITCH, PLAYOUT_START, REBUFFER_START, REBUFFER_STOP,
    FAULT_INJECTED, LINK_DOWN, LINK_UP, NO_ROUTE_DROP, ROUTE_RECONVERGED,
    TCP_RETRANSMIT, TCP_ABORT, KEEPALIVE_MISS, SESSION_LOST,
    QUALITY_DOWNSHIFT, QUALITY_UPSHIFT, PLAYER_STALLED, EOS_TIMEOUT,
    SERVER_PAUSED, SERVER_RESUMED, SERVER_CRASHED,
    CC_STATE, ABR_SEGMENT, ABR_SWITCH,
    FEC_PARITY_SENT, NACK_SENT, RETRANSMIT_SENT,
    REPAIR_RECOVERED, REPAIR_ABANDONED, QOE_SCORE,
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes:
        type: one of the taxonomy constants above.
        time: simulated seconds.
        sequence: bus-assigned monotonic tiebreaker; two events at the
            same simulated instant replay in emission order.
        fields: free-form event payload (queue depth, fragment count,
            player family...), values restricted to JSON scalars.
    """

    type: str
    time: float
    sequence: int
    fields: Tuple[Tuple[str, object], ...] = ()

    def field_dict(self) -> Dict[str, object]:
        return dict(self.fields)

    def as_record(self) -> Dict[str, object]:
        """Flat dict form used by the JSON-lines sink."""
        record: Dict[str, object] = {
            "type": self.type, "time": round(self.time, 9),
            "seq": self.sequence,
        }
        for key, value in self.fields:
            record[key] = value
        return record


class TraceEventBus:
    """Bounded fan-out from emit sites to sinks.

    Args:
        sinks: initial sinks; more may be attached later.  The bus is
            *inactive* (emit is a no-op that allocates nothing) until at
            least one attached sink reports ``active``.
    """

    def __init__(self, sinks: Optional[Iterable[object]] = None) -> None:
        self._sinks: List[object] = []
        self._sequence = 0
        self._active = False
        self._context: Tuple[Tuple[str, object], ...] = ()
        for sink in sinks or ():
            self.attach(sink)

    def attach(self, sink: object) -> None:
        self._sinks.append(sink)
        self._refresh_active()

    def detach(self, sink: object) -> None:
        """Remove a previously-attached sink (identity match).

        The study runner attaches one per-run streaming sink before a
        pair run and detaches it after, so a run's folds never bleed
        into the next run's summary.  Detaching a sink that is not
        attached is a no-op.
        """
        try:
            self._sinks.remove(sink)
        except ValueError:
            return
        self._refresh_active()

    def _refresh_active(self) -> None:
        self._active = any(getattr(sink, "active", True)
                           for sink in self._sinks)

    @property
    def active(self) -> bool:
        """Whether emit does any work at all."""
        return self._active

    def set_context(self, **labels: object) -> None:
        """Fields stamped onto every event emitted from now on."""
        self._context = tuple(sorted(labels.items()))

    def clear_context(self) -> None:
        self._context = ()

    def emit(self, event_type: str, time: float, **fields: object) -> None:
        """Publish one event; a no-op (no allocation) when inactive."""
        if not self._active:
            return
        event = TraceEvent(type=event_type, time=time,
                           sequence=self._sequence,
                           fields=self._context + tuple(sorted(fields.items())))
        self._sequence += 1
        for sink in self._sinks:
            if getattr(sink, "active", True):
                sink.write(event)

    def replay(self, rows: Iterable[Tuple[str, float, Tuple]]) -> int:
        """Deliver pre-recorded ``(type, time, fields)`` rows, in order.

        The parallel study executor captures each worker's events in
        the worker process (see ``Telemetry.snapshot``, which encodes
        them as these rows — tuples cross the process boundary far
        cheaper than event objects) and replays them here; every event
        keeps its simulated timestamp and fields but receives *this*
        bus's next sequence number, so a parallel study's merged stream
        is numbered exactly like the sequential one.

        Returns:
            The number of events delivered (0 when the bus is inactive,
            mirroring :meth:`emit`).
        """
        if not self._active:
            return 0
        sinks = [sink for sink in self._sinks
                 if getattr(sink, "active", True)]
        delivered = 0
        for event_type, time, fields in rows:
            event = TraceEvent(type=event_type, time=time,
                               sequence=self._sequence, fields=fields)
            self._sequence += 1
            delivered += 1
            for sink in sinks:
                sink.write(event)
        return delivered

    def close(self) -> None:
        """Flush and close every sink that supports it."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

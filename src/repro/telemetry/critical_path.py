"""Latency attribution over a recorded span forest.

Answers the question the paper answered with captures and tracker logs:
*where did this ADU's end-to-end latency go?*  For every completed ADU
trace the analyzer decomposes

    playout_time - pacer_send_time

into five exactly-tiling components:

* **queueing** — time spent resident in link queues, summed over the
  hops of the *first-arriving* packet of the ADU;
* **serialization** — wire transmission time over those hops;
* **propagation** — speed-of-light plus jitter over those hops;
* **reassembly-wait** — how long the destination host held the first
  fragment waiting for the rest of the train (zero when unfragmented).
  This is precisely the extra latency caused by fragmentation — the
  trailing fragments' serialization shows up here, which is the
  paper's Figure 4/5 story in latency form;
* **buffer-wait** — how long the delay buffer held the media before
  its playout instant.

Because hop spans tile the first packet's journey and the reassembly
and buffer spans tile the rest, the five components sum to the measured
end-to-end latency to float precision — an invariant the test suite
pins and the ``repro spans`` acceptance check relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.telemetry.spans import (
    SPAN_ADU,
    SPAN_BUFFER,
    SPAN_PACKET,
    SPAN_PROP,
    SPAN_QUEUE,
    SPAN_REASSEMBLY,
    SPAN_TX,
    STATUS_OK,
    STATUS_PLAYED,
    Span,
    SpanRecorder,
)

#: Exported floats are rounded like the other telemetry exporters.
FLOAT_DECIMALS = 9


@dataclass
class HopTiming:
    """One hop of the critical packet's journey."""

    link: str
    queue: float = 0.0
    tx: float = 0.0
    prop: float = 0.0

    @property
    def total(self) -> float:
        return self.queue + self.tx + self.prop


@dataclass
class AduLatency:
    """The full attribution for one completed ADU."""

    trace: int
    family: str
    run: Optional[str]
    sequence: int
    start: float
    end: float
    fragment_count: int
    queueing: float
    serialization: float
    propagation: float
    reassembly_wait: float
    buffer_wait: float
    hops: List[HopTiming] = field(default_factory=list)

    @property
    def total(self) -> float:
        """Measured end-to-end latency: pacer send to playout."""
        return self.end - self.start

    @property
    def components_sum(self) -> float:
        """The five attributed components, summed (== total to float
        precision; the invariant the tests pin)."""
        return (self.queueing + self.serialization + self.propagation
                + self.reassembly_wait + self.buffer_wait)

    def as_record(self) -> Dict[str, object]:
        """Flat JSON-able form used by the ``repro spans`` export."""
        record: Dict[str, object] = {
            "trace": self.trace, "family": self.family,
            "seq": self.sequence, "fragments": self.fragment_count,
            "start": round(self.start, FLOAT_DECIMALS),
            "end": round(self.end, FLOAT_DECIMALS),
            "total": round(self.total, FLOAT_DECIMALS),
            "queueing": round(self.queueing, FLOAT_DECIMALS),
            "serialization": round(self.serialization, FLOAT_DECIMALS),
            "propagation": round(self.propagation, FLOAT_DECIMALS),
            "reassembly_wait": round(self.reassembly_wait, FLOAT_DECIMALS),
            "buffer_wait": round(self.buffer_wait, FLOAT_DECIMALS),
            "hops": [{"link": hop.link,
                      "queue": round(hop.queue, FLOAT_DECIMALS),
                      "tx": round(hop.tx, FLOAT_DECIMALS),
                      "prop": round(hop.prop, FLOAT_DECIMALS)}
                     for hop in self.hops],
        }
        if self.run is not None:
            record["run"] = self.run
        return record


COMPONENT_NAMES = ("queueing", "serialization", "propagation",
                   "reassembly_wait", "buffer_wait")


def attribute_latency(recorder: SpanRecorder) -> List[AduLatency]:
    """Decompose every completed ADU trace in the recorder.

    ADUs whose media never reached a playout instant (discarded with
    the session, dropped in flight, still open at shutdown) are
    skipped: there is no end-to-end latency to attribute.
    """
    by_trace: Dict[int, List[Span]] = {}
    for span in recorder.spans:
        by_trace.setdefault(span.trace, []).append(span)

    results: List[AduLatency] = []
    for root in recorder.spans:
        if root.kind != SPAN_ADU or root.status != STATUS_PLAYED:
            continue
        family = str(root.attrs.get("family", "?"))
        run = root.attrs.get("run")
        members = by_trace[root.trace]
        buffer_span = _single(members, SPAN_BUFFER)
        if buffer_span is None or buffer_span.status != STATUS_PLAYED:
            continue
        packets = [s for s in members if s.kind == SPAN_PACKET
                   and s.status == STATUS_OK]
        if not packets:
            continue
        # The first-arriving packet carries the network attribution;
        # everything the train added on top lands in reassembly-wait.
        first = min(packets, key=lambda s: (s.end, s.id))
        hops = _hop_timings(members, first)
        reassembly = _single(members, SPAN_REASSEMBLY)
        reassembly_wait = (reassembly.duration
                           if reassembly is not None and reassembly.closed
                           else 0.0)
        results.append(AduLatency(
            trace=root.trace, family=family,
            run=str(run) if run is not None else None,
            sequence=int(root.attrs.get("seq", 0)),
            start=root.start, end=buffer_span.end,
            fragment_count=len([s for s in members
                                if s.kind == SPAN_PACKET]),
            queueing=sum(h.queue for h in hops),
            serialization=sum(h.tx for h in hops),
            propagation=sum(h.prop for h in hops),
            reassembly_wait=reassembly_wait,
            buffer_wait=buffer_span.duration,
            hops=hops))
    return results


def _single(members: Sequence[Span], kind: str) -> Optional[Span]:
    for span in members:
        if span.kind == kind:
            return span
    return None


def _hop_timings(members: Sequence[Span], packet: Span) -> List[HopTiming]:
    """The packet's queue/tx/prop stages folded into per-hop rows.

    Stages were recorded in traversal order (span ids are monotonic in
    event order), and every hop starts with a queue span, so a queue
    span opens a new row and tx/prop fill the current one.
    """
    stages = sorted((s for s in members if s.parent == packet.id),
                    key=lambda s: s.id)
    hops: List[HopTiming] = []
    for stage in stages:
        if stage.kind == SPAN_QUEUE:
            hops.append(HopTiming(link=str(stage.attrs.get("link", "?")),
                                  queue=stage.duration))
        elif stage.kind == SPAN_TX and hops:
            hops[-1].tx = stage.duration
        elif stage.kind == SPAN_PROP and hops:
            hops[-1].prop = stage.duration
    return hops


# ----------------------------------------------------------------------
# Aggregation (the WMS-vs-RealServer side-by-side table)
# ----------------------------------------------------------------------

def aggregate_attribution(latencies: Sequence[AduLatency],
                          ) -> Dict[str, Dict[str, float]]:
    """Per-family means of every component, plus counts.

    Returns ``{family: {"count", "mean_total", "mean_<component>"...,
    "share_<component>"...}}`` with shares in percent of mean total.
    """
    grouped: Dict[str, List[AduLatency]] = {}
    for latency in latencies:
        grouped.setdefault(latency.family, []).append(latency)
    table: Dict[str, Dict[str, float]] = {}
    for family in sorted(grouped):
        rows = grouped[family]
        count = len(rows)
        entry: Dict[str, float] = {"count": count}
        mean_total = sum(r.total for r in rows) / count
        entry["mean_total"] = round(mean_total, FLOAT_DECIMALS)
        for name in COMPONENT_NAMES:
            mean = sum(getattr(r, name) for r in rows) / count
            entry[f"mean_{name}"] = round(mean, FLOAT_DECIMALS)
            entry[f"share_{name}"] = round(
                100.0 * mean / mean_total if mean_total else 0.0, 4)
        entry["mean_fragments"] = round(
            sum(r.fragment_count for r in rows) / count, 4)
        table[family] = entry
    return table


def slowest(latencies: Sequence[AduLatency], top: int) -> List[AduLatency]:
    """The ``top`` highest-latency ADUs, slowest first (stable by
    trace id so same-seed runs rank identically)."""
    return sorted(latencies, key=lambda r: (-r.total, r.trace))[:top]


def attribution_dict(latencies: Sequence[AduLatency],
                     top: int = 10) -> Dict[str, object]:
    """The machine-readable document ``repro spans --json`` writes."""
    return {
        "adu_count": len(latencies),
        "aggregate": aggregate_attribution(latencies),
        "slowest": [latency.as_record()
                    for latency in slowest(latencies, top)],
    }

"""Simulation-time-aware metrics: counters, gauges, streaming histograms.

The registry is the numeric half of the telemetry subsystem (trace
events are the other half, see :mod:`repro.telemetry.events`).  Every
instrument is keyed by ``(name, labels)`` so one registry can hold, for
example, a ``queue.bytes`` gauge per link direction per study run.
Timestamps are *simulated* seconds — the registry never reads the wall
clock, which is what makes exports byte-reproducible across runs with
the same seed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError

#: Immutable, sorted label set — the dict key half of an instrument key.
LabelSet = Tuple[Tuple[str, str], ...]

#: Default streaming-histogram bucket boundaries: a geometric ladder
#: wide enough for byte sizes, depths, and sub-second gaps alike.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-3, 1.0, 1e3, 1e6)
    for base in (1.0, 2.0, 5.0)
) + (1e7,)

#: Gauges keep a bounded time series; old samples fall off the front.
DEFAULT_SERIES_LIMIT = 65536


def canonical_labels(labels: Dict[str, object]) -> LabelSet:
    """Labels as a hashable, deterministically-ordered tuple."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: LabelSet) -> str:
    """``{a=1,b=x}`` rendering used by exports and tables."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A monotonically-increasing count (packets sent, drops, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value with a bounded simulated-time series.

    ``set`` records ``(sim_time, value)`` samples so exporters can
    reconstruct e.g. a per-hop queue-depth timeline; the series is a
    bounded deque, keeping the most recent ``series_limit`` samples.
    """

    __slots__ = ("value", "series")

    def __init__(self, series_limit: int = DEFAULT_SERIES_LIMIT) -> None:
        self.value = 0.0
        self.series: Deque[Tuple[float, float]] = deque(maxlen=series_limit)

    def set(self, value: float, time: float) -> None:
        self.value = value
        self.series.append((time, value))

    @property
    def peak(self) -> float:
        """Largest value ever recorded in the retained series."""
        if not self.series:
            return self.value
        return max(v for _, v in self.series)


class Histogram:
    """A streaming histogram with fixed bucket bounds.

    Observations update count/sum/min/max plus a per-bucket tally; no
    raw samples are retained, so memory is O(buckets) regardless of how
    many packets a study pushes through.  Two histograms with the same
    bounds merge exactly (bucket-wise addition), which is how per-run
    registries roll up into study totals.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise AnalysisError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        # One overflow bucket past the last bound.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Raises:
            AnalysisError: when bucket bounds differ (the merge would
                be lossy).
        """
        if other.bounds != self.bounds:
            raise AnalysisError("cannot merge histograms with different bounds")
        self.count += other.count
        self.total += other.total
        for index, tally in enumerate(other.bucket_counts):
            self.bucket_counts[index] += tally
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket tallies (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, tally in enumerate(self.bucket_counts):
            cumulative += tally
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by (name, labels).

    A context label set (see :meth:`set_context`) is merged into every
    key at creation time — the experiment runner uses it to scope one
    shared registry to the pair run currently executing.
    """

    def __init__(self, series_limit: int = DEFAULT_SERIES_LIMIT) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self._series_limit = series_limit
        self._context: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def set_context(self, **labels: object) -> None:
        """Labels merged into every instrument created from now on."""
        self._context = dict(labels)

    def clear_context(self) -> None:
        self._context = {}

    def _key(self, name: str, labels: Dict[str, object]) -> Tuple[str, LabelSet]:
        if self._context:
            merged = dict(self._context)
            merged.update(labels)
            return name, canonical_labels(merged)
        return name, canonical_labels(labels)

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(self._series_limit)
        return instrument

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # ------------------------------------------------------------------
    # Merging (parallel study workers -> the parent registry)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters add, histograms merge bucket-wise, and gauges append
        the other registry's retained series (the other registry is
        treated as *later in time*: its last value wins).  Instruments
        absent here are adopted wholesale — the donor registry is a
        worker snapshot about to be discarded, so sharing the objects
        is safe.

        The study runner scopes every instrument with a ``run=<label>``
        context label, so in practice the key sets are disjoint and the
        merge is a plain union — the collision rules above exist for
        callers merging unscoped registries.
        """
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                self._counters[key] = counter
            else:
                mine.inc(counter.value)
        for key, gauge in other._gauges.items():
            mine = self._gauges.get(key)
            if mine is None:
                self._gauges[key] = gauge
            else:
                mine.series.extend(gauge.series)
                mine.value = gauge.value
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = histogram
            else:
                mine.merge(histogram)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Tuple[str, LabelSet, Counter]]:
        for (name, labels), instrument in sorted(self._counters.items()):
            yield name, labels, instrument

    def gauges(self) -> Iterator[Tuple[str, LabelSet, Gauge]]:
        for (name, labels), instrument in sorted(self._gauges.items()):
            yield name, labels, instrument

    def histograms(self) -> Iterator[Tuple[str, LabelSet, Histogram]]:
        for (name, labels), instrument in sorted(self._histograms.items()):
            yield name, labels, instrument

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def merged_histogram(self, name: str) -> Histogram:
        """All same-named histograms folded together across label sets."""
        merged: Optional[Histogram] = None
        for metric_name, _, histogram in self.histograms():
            if metric_name != name:
                continue
            if merged is None:
                merged = Histogram(histogram.bounds)
            merged.merge(histogram)
        if merged is None:
            raise AnalysisError(f"no histogram named {name!r}")
        return merged

    def gauge_series(self, name: str) -> List[Tuple[LabelSet,
                                                    List[Tuple[float, float]]]]:
        """Every retained (time, value) series for gauges named ``name``."""
        return [(labels, list(gauge.series))
                for metric_name, labels, gauge in self.gauges()
                if metric_name == name]

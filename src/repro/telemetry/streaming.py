"""Bounded-memory online aggregation: fold the stream, keep O(1) state.

The buffering sinks (:class:`~repro.telemetry.sinks.MemorySink`, the
span recorder) retain *every* record, so a study's telemetry footprint
grows with run count — which is exactly what the fleet-scale roadmap
item forbids.  This module is the other discipline: a
:class:`StreamingSummary` *folds* each :class:`TraceEvent` (and each
closed span) into fixed-size state the moment it is emitted — counters
by type, the existing mergeable :class:`~repro.telemetry.registry.Histogram`
for packet sizes and span durations, a deterministic top-K
heavy-hitter sketch over event families, and a turbulence roll-up
(delivered rate, rebuffer ratio, fragment trains, recovery counts) —
and never looks at the record again.

Three laws make the summary trustworthy across execution paths:

* **fold is order-insensitive** — every reduction is commutative
  (counts add, min/max compare, the rebuffer ledger sums start and
  stop timestamps separately), so the per-run summary does not depend
  on event interleaving;
* **merge is associative and commutative with an empty identity** —
  bucket-wise and pointwise addition throughout (the sketch is exact,
  hence fully lawful, while its key set fits the capacity;
  past capacity its deterministic eviction keeps every *execution
  path* identical even though pathological merge orders could differ);
* **derived metrics are computed at export time only** — ratios and
  rates never live in folded state, so folding stays a pure monoid.

Together these are why the sequential loop, ``jobs=N`` workers (one
summary per run, shipped home in the
:class:`~repro.telemetry.core.TelemetrySnapshot`), and a disk-cache
round-trip all produce **byte-identical** canonical JSON, and why the
``stream-equivalence`` invariant (folded online == recomputed from the
buffered events) can be checked exactly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.telemetry.events import (
    FAULT_INJECTED,
    FEC_PARITY_SENT,
    FRAGMENT_EMITTED,
    KEEPALIVE_MISS,
    NACK_SENT,
    PACKET_DELIVERED,
    PACKET_LOSS,
    PLAYOUT_START,
    QOE_SCORE,
    QUALITY_DOWNSHIFT,
    QUALITY_UPSHIFT,
    QUEUE_DROP,
    REBUFFER_START,
    REBUFFER_STOP,
    REPAIR_ABANDONED,
    REPAIR_RECOVERED,
    RETRANSMIT_SENT,
    ROUTE_RECONVERGED,
    STREAM_END,
    STREAM_START,
    TCP_RETRANSMIT,
    TraceEvent,
)
from repro.telemetry.registry import DEFAULT_BUCKET_BOUNDS, Histogram

#: Default heavy-hitter capacity.  The event-family domain is bounded
#: by the taxonomy crossed with topology entity names (per-hop link
#: names × the three packet event types dominate; players, servers,
#: and controllers add a handful more) — comfortably inside this, so
#: the sketch stays exact (and its merge fully lawful) in practice.
#: Exactness also keeps "merge of per-run folds" equal to "one fold of
#: the whole buffered stream", the refold half of the
#: ``stream-equivalence`` oracle.
DEFAULT_SKETCH_CAPACITY = 256

#: Exported floats match the exporter discipline (fixed 9-decimal
#: rounding normalizes repr noise without losing seeded exactness).
FLOAT_DECIMALS = 9

#: Entity fields that qualify an event family, in preference order.
#: ``run`` is deliberately absent: a family key must never incorporate
#: the run label, or the sketch's key domain — and with it the summary
#: footprint — would grow linearly with run count.
_FAMILY_FIELDS: Tuple[str, ...] = (
    "family", "player", "controller", "scenario", "server", "host",
    "link", "queue",
)


#: Fixed-point scale for folded sums: one unit per 1e-9 (the same
#: resolution the export rounding keeps).
_FP_SCALE = 10 ** FLOAT_DECIMALS


def _round(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    return round(value, FLOAT_DECIMALS)


def _fp(value: float) -> int:
    """Fixed-point encoding: integer sums are exactly associative."""
    return int(round(value * _FP_SCALE))


class ExactSumHistogram(Histogram):
    """A :class:`Histogram` whose running sum is exactly associative.

    Float addition is not associative, so per-run partial sums merged
    in library order can drift a last ulp from one continuous fold of
    the very same values — enough to break the byte-identity guarantee
    between the merged study summary and the ``stream-equivalence``
    refold.  This subclass additionally folds each observation at
    1e-9 resolution into an *integer* sum (:attr:`sum_fp`); integer
    addition is associative and commutative, so any grouping of folds
    and merges lands on identical bits.  Export paths read
    :attr:`exact_total` / :attr:`exact_mean`, never the float ``total``.
    """

    __slots__ = ("sum_fp",)

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        super().__init__(bounds)
        self.sum_fp = 0

    def observe(self, value: float) -> None:
        super().observe(value)
        self.sum_fp += _fp(value)

    def merge(self, other: "Histogram") -> None:
        super().merge(other)
        self.sum_fp += other.sum_fp

    @property
    def exact_total(self) -> float:
        return self.sum_fp / _FP_SCALE

    @property
    def exact_mean(self) -> float:
        return self.exact_total / self.count if self.count else 0.0


def _histogram_dict(histogram: ExactSumHistogram) -> Dict[str, object]:
    """The exporter-style rendering of one histogram (nonzero buckets)."""
    return {
        "count": histogram.count,
        "sum": _round(histogram.exact_total),
        "min": _round(histogram.min),
        "max": _round(histogram.max),
        "mean": _round(histogram.exact_mean),
        "buckets": [[_round(bound), tally]
                    for bound, tally in zip(histogram.bounds,
                                            histogram.bucket_counts)
                    if tally > 0],
    }


class TopKSketch:
    """Deterministic bounded heavy-hitter counts over string keys.

    Exact counting while the key set fits ``capacity``; past that, the
    smallest counts (ties broken by key, reverse-lexicographic out
    first) spill into an aggregate ``evicted`` tally.  Both the
    retained set and the spill are pure functions of the observation
    multiset and order, so every execution path that sees the same
    stream renders the same sketch.
    """

    __slots__ = ("capacity", "counts", "evicted_updates", "evicted_total")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        if capacity < 1:
            raise AnalysisError(f"sketch capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counts: Dict[str, int] = {}
        #: How many eviction passes spilled keys (a "was I exact?" flag).
        self.evicted_updates = 0
        #: Total observation weight lost to evictions.
        self.evicted_total = 0

    def observe(self, key: str, amount: int = 1) -> None:
        counts = self.counts
        counts[key] = counts.get(key, 0) + amount
        if len(counts) > self.capacity:
            self._compact()

    def _compact(self) -> None:
        """Evict the lowest-count keys down to capacity, deterministically."""
        overflow = len(self.counts) - self.capacity
        if overflow <= 0:
            return
        # Sort ascending by count, then *descending* by key, so of two
        # equal-count keys the lexicographically-later one spills first.
        victims = sorted(self.counts.items(),
                         key=lambda item: (item[1], _ReverseStr(item[0])))
        for key, count in victims[:overflow]:
            del self.counts[key]
            self.evicted_total += count
        self.evicted_updates += 1

    def merge(self, other: "TopKSketch") -> None:
        """Pointwise-add another sketch, then re-evict to capacity.

        Raises:
            AnalysisError: when capacities differ (the merged sketch
                would not be comparable to either input).
        """
        if other.capacity != self.capacity:
            raise AnalysisError(
                "cannot merge sketches with different capacities")
        counts = self.counts
        for key, count in other.counts.items():
            counts[key] = counts.get(key, 0) + count
        self.evicted_updates += other.evicted_updates
        self.evicted_total += other.evicted_total
        if len(counts) > self.capacity:
            self._compact()

    def top(self, k: Optional[int] = None) -> List[Tuple[str, int]]:
        """Heaviest keys first (ties broken lexicographically)."""
        ranked = sorted(self.counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked if k is None else ranked[:k]

    @property
    def total(self) -> int:
        """All observation weight ever folded, evicted spill included."""
        return sum(self.counts.values()) + self.evicted_total

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "entries": [[key, count] for key, count in self.top()],
            "evicted_updates": self.evicted_updates,
            "evicted_total": self.evicted_total,
        }

    def __len__(self) -> int:
        return len(self.counts)


class _ReverseStr:
    """Sort adapter: orders strings in reverse without negation tricks."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReverseStr") -> bool:
        return self.value > other.value


class TurbulenceRollup:
    """The paper's turbulence story as O(1) commutative accumulators.

    Every field is a sum, count, or min/max over the event stream —
    never a ratio.  Rates and ratios (delivered kbps, rebuffer ratio,
    loss rate) are derived in :meth:`as_dict` from the folded state, so
    the roll-up itself remains a lawful monoid.  The rebuffer ledger
    uses the balance trick: summing stop timestamps and start
    timestamps *separately* makes total rebuffer duration an
    order-insensitive fold (Σstop − Σstart, plus ``last_time`` per
    still-open gap at export time).  Timestamp sums accumulate in
    fixed point (integer 1e-9 units) so fold and merge are *exactly*
    associative — see :class:`ExactSumHistogram` for why floats are not.
    """

    __slots__ = (
        "delivered_packets", "delivered_bytes", "lost_packets",
        "queue_drops", "frag_trains", "fragments", "stream_starts",
        "stream_ends", "playout_starts", "rebuffer_starts",
        "rebuffer_stops", "rebuffer_start_fp",
        "rebuffer_stop_fp", "faults_fired", "route_reconvergences",
        "tcp_retransmits", "keepalive_misses", "quality_downshifts",
        "quality_upshifts", "first_time", "last_time",
        "nacks_sent", "parity_groups", "parity_bytes",
        "retransmits_sent", "rtx_bytes", "repairs_parity", "repairs_rtx",
        "repairs_before_deadline", "repairs_abandoned",
        "qoe_runs", "qoe_sum_fp", "qoe_min_fp", "qoe_max_fp",
    )

    def __init__(self) -> None:
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.lost_packets = 0
        self.queue_drops = 0
        self.frag_trains = 0
        self.fragments = 0
        self.stream_starts = 0
        self.stream_ends = 0
        self.playout_starts = 0
        self.rebuffer_starts = 0
        self.rebuffer_stops = 0
        self.rebuffer_start_fp = 0
        self.rebuffer_stop_fp = 0
        self.faults_fired = 0
        self.route_reconvergences = 0
        self.tcp_retransmits = 0
        self.keepalive_misses = 0
        self.quality_downshifts = 0
        self.quality_upshifts = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        # Loss repair + QoE (repro.repair); all zero on repair-free
        # runs, and the export omits the section entirely then so
        # legacy summaries stay byte-identical.
        self.nacks_sent = 0
        self.parity_groups = 0
        self.parity_bytes = 0
        self.retransmits_sent = 0
        self.rtx_bytes = 0
        self.repairs_parity = 0
        self.repairs_rtx = 0
        self.repairs_before_deadline = 0
        self.repairs_abandoned = 0
        self.qoe_runs = 0
        self.qoe_sum_fp = 0
        self.qoe_min_fp: Optional[int] = None
        self.qoe_max_fp: Optional[int] = None

    def fold(self, etype: str, time: float, fields: Dict[str, object]) -> None:
        if self.first_time is None or time < self.first_time:
            self.first_time = time
        if self.last_time is None or time > self.last_time:
            self.last_time = time
        if etype == PACKET_DELIVERED:
            self.delivered_packets += 1
            self.delivered_bytes += int(fields.get("packet_bytes", 0))
        elif etype == PACKET_LOSS:
            self.lost_packets += 1
        elif etype == QUEUE_DROP:
            self.queue_drops += 1
        elif etype == FRAGMENT_EMITTED:
            count = int(fields.get("fragments", 1))
            self.fragments += count
            if count >= 2:
                self.frag_trains += 1
        elif etype == STREAM_START:
            self.stream_starts += 1
        elif etype == STREAM_END:
            self.stream_ends += 1
        elif etype == PLAYOUT_START:
            self.playout_starts += 1
        elif etype == REBUFFER_START:
            self.rebuffer_starts += 1
            self.rebuffer_start_fp += _fp(time)
        elif etype == REBUFFER_STOP:
            self.rebuffer_stops += 1
            self.rebuffer_stop_fp += _fp(time)
        elif etype == FAULT_INJECTED:
            self.faults_fired += 1
        elif etype == ROUTE_RECONVERGED:
            self.route_reconvergences += 1
        elif etype == TCP_RETRANSMIT:
            self.tcp_retransmits += 1
        elif etype == KEEPALIVE_MISS:
            self.keepalive_misses += 1
        elif etype == QUALITY_DOWNSHIFT:
            self.quality_downshifts += 1
        elif etype == QUALITY_UPSHIFT:
            self.quality_upshifts += 1
        elif etype == NACK_SENT:
            self.nacks_sent += 1
        elif etype == FEC_PARITY_SENT:
            self.parity_groups += 1
            self.parity_bytes += int(fields.get("bytes", 0))
        elif etype == RETRANSMIT_SENT:
            self.retransmits_sent += 1
            self.rtx_bytes += int(fields.get("bytes", 0))
        elif etype == REPAIR_RECOVERED:
            if fields.get("method") == "parity":
                self.repairs_parity += 1
            else:
                self.repairs_rtx += 1
            if fields.get("before_deadline"):
                self.repairs_before_deadline += 1
        elif etype == REPAIR_ABANDONED:
            self.repairs_abandoned += 1
        elif etype == QOE_SCORE:
            self.qoe_runs += 1
            score_fp = _fp(float(fields.get("score", 0.0)))
            self.qoe_sum_fp += score_fp
            if self.qoe_min_fp is None or score_fp < self.qoe_min_fp:
                self.qoe_min_fp = score_fp
            if self.qoe_max_fp is None or score_fp > self.qoe_max_fp:
                self.qoe_max_fp = score_fp

    def merge(self, other: "TurbulenceRollup") -> None:
        self.delivered_packets += other.delivered_packets
        self.delivered_bytes += other.delivered_bytes
        self.lost_packets += other.lost_packets
        self.queue_drops += other.queue_drops
        self.frag_trains += other.frag_trains
        self.fragments += other.fragments
        self.stream_starts += other.stream_starts
        self.stream_ends += other.stream_ends
        self.playout_starts += other.playout_starts
        self.rebuffer_starts += other.rebuffer_starts
        self.rebuffer_stops += other.rebuffer_stops
        self.rebuffer_start_fp += other.rebuffer_start_fp
        self.rebuffer_stop_fp += other.rebuffer_stop_fp
        self.faults_fired += other.faults_fired
        self.route_reconvergences += other.route_reconvergences
        self.tcp_retransmits += other.tcp_retransmits
        self.keepalive_misses += other.keepalive_misses
        self.quality_downshifts += other.quality_downshifts
        self.quality_upshifts += other.quality_upshifts
        self.nacks_sent += other.nacks_sent
        self.parity_groups += other.parity_groups
        self.parity_bytes += other.parity_bytes
        self.retransmits_sent += other.retransmits_sent
        self.rtx_bytes += other.rtx_bytes
        self.repairs_parity += other.repairs_parity
        self.repairs_rtx += other.repairs_rtx
        self.repairs_before_deadline += other.repairs_before_deadline
        self.repairs_abandoned += other.repairs_abandoned
        self.qoe_runs += other.qoe_runs
        self.qoe_sum_fp += other.qoe_sum_fp
        if other.qoe_min_fp is not None and (
                self.qoe_min_fp is None
                or other.qoe_min_fp < self.qoe_min_fp):
            self.qoe_min_fp = other.qoe_min_fp
        if other.qoe_max_fp is not None and (
                self.qoe_max_fp is None
                or other.qoe_max_fp > self.qoe_max_fp):
            self.qoe_max_fp = other.qoe_max_fp
        if other.first_time is not None and (
                self.first_time is None or other.first_time < self.first_time):
            self.first_time = other.first_time
        if other.last_time is not None and (
                self.last_time is None or other.last_time > self.last_time):
            self.last_time = other.last_time

    # ------------------------------------------------------------------
    # Export-time derivations (never folded state)
    # ------------------------------------------------------------------
    @property
    def span_seconds(self) -> float:
        """Observed stream span (0 until two distinct timestamps fold)."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    @property
    def rebuffer_seconds(self) -> float:
        """Total underrun time via the start/stop balance ledger."""
        open_gaps = self.rebuffer_starts - self.rebuffer_stops
        closed = (self.rebuffer_stop_fp - self.rebuffer_start_fp) / _FP_SCALE
        if open_gaps > 0 and self.last_time is not None:
            closed += open_gaps * self.last_time
        return max(closed, 0.0)

    @property
    def repair_active(self) -> bool:
        """Whether any repair/QoE signal ever folded.

        Gates the export of the ``repair`` section: repair-free runs
        fold none of these events and must render the exact summary
        they always have.
        """
        return bool(self.nacks_sent or self.parity_groups
                    or self.retransmits_sent or self.repairs_parity
                    or self.repairs_rtx or self.repairs_abandoned
                    or self.qoe_runs)

    def as_dict(self) -> Dict[str, object]:
        span = self.span_seconds
        attempted = (self.delivered_packets + self.lost_packets
                     + self.queue_drops)
        recoveries = {
            "route_reconverged": self.route_reconvergences,
            "tcp_retransmit": self.tcp_retransmits,
            "rebuffer_stop": self.rebuffer_stops,
            "keepalive_miss": self.keepalive_misses,
            "quality_downshift": self.quality_downshifts,
            "quality_upshift": self.quality_upshifts,
        }
        result = {
            "delivered_packets": self.delivered_packets,
            "delivered_bytes": self.delivered_bytes,
            "delivered_rate_kbps": _round(
                self.delivered_bytes * 8.0 / 1000.0 / span if span else 0.0),
            "lost_packets": self.lost_packets,
            "queue_drops": self.queue_drops,
            "loss_rate": _round(
                (self.lost_packets + self.queue_drops) / attempted
                if attempted else 0.0),
            "frag_trains": self.frag_trains,
            "fragments": self.fragments,
            "stream_starts": self.stream_starts,
            "stream_ends": self.stream_ends,
            "playout_starts": self.playout_starts,
            "rebuffer_starts": self.rebuffer_starts,
            "rebuffer_stops": self.rebuffer_stops,
            "rebuffer_seconds": _round(self.rebuffer_seconds),
            "rebuffer_ratio": _round(
                self.rebuffer_seconds / span if span else 0.0),
            "faults_fired": self.faults_fired,
            "recoveries": recoveries,
            "recovery_count": sum(recoveries.values()),
            "first_time": _round(self.first_time),
            "last_time": _round(self.last_time),
        }
        if self.repair_active:
            recovered = self.repairs_parity + self.repairs_rtx
            settled = recovered + self.repairs_abandoned
            result["repair"] = {
                "nacks_sent": self.nacks_sent,
                "parity_groups": self.parity_groups,
                "parity_bytes": self.parity_bytes,
                "retransmits_sent": self.retransmits_sent,
                "rtx_bytes": self.rtx_bytes,
                "recovered_parity": self.repairs_parity,
                "recovered_rtx": self.repairs_rtx,
                "recovered_before_deadline": self.repairs_before_deadline,
                "abandoned": self.repairs_abandoned,
                "repair_ratio": _round(
                    recovered / settled if settled else 0.0),
                "qoe": {
                    "runs": self.qoe_runs,
                    "mean": _round(self.qoe_sum_fp / _FP_SCALE
                                   / self.qoe_runs
                                   if self.qoe_runs else 0.0),
                    "min": _round(self.qoe_min_fp / _FP_SCALE
                                  if self.qoe_min_fp is not None else None),
                    "max": _round(self.qoe_max_fp / _FP_SCALE
                                  if self.qoe_max_fp is not None else None),
                },
            }
        return result


class StreamingSummary:
    """The bounded-memory study summary: fold events in, merge across.

    One summary instance is a *monoid element*: ``spawn()`` yields the
    identity with the same configuration, :meth:`fold` absorbs one
    event into O(1) state, and :meth:`merge` combines two summaries
    associatively.  The study runner folds each pair run into a fresh
    spawn and merges per-run summaries in library order, so sequential,
    parallel, and cache-round-trip paths render byte-identical
    :meth:`to_json` output.
    """

    def __init__(self, sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.sketch_capacity = sketch_capacity
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS)
        self.events_folded = 0
        self.events_by_type: Dict[str, int] = {}
        self.families = TopKSketch(sketch_capacity)
        self.packet_bytes = ExactSumHistogram(self.bounds)
        self.rollup = TurbulenceRollup()
        self.spans_folded = 0
        self.span_kinds: Dict[str, int] = {}
        self.span_seconds = ExactSumHistogram(self.bounds)

    # ------------------------------------------------------------------
    # Folding (the online path)
    # ------------------------------------------------------------------
    def fold(self, event: TraceEvent) -> None:
        """Absorb one trace event; O(1) work, no reference retained."""
        etype = event.type
        self.events_folded += 1
        by_type = self.events_by_type
        by_type[etype] = by_type.get(etype, 0) + 1
        fields = dict(event.fields)
        self.families.observe(self._family_key(etype, fields))
        if etype == PACKET_DELIVERED:
            self.packet_bytes.observe(float(fields.get("packet_bytes", 0)))
        self.rollup.fold(etype, event.time, fields)

    @staticmethod
    def _family_key(etype: str, fields: Dict[str, object]) -> str:
        for name in _FAMILY_FIELDS:
            value = fields.get(name)
            if value is not None:
                return f"{etype}:{value}"
        return etype

    def fold_spans(self, spans: Iterable[object]) -> None:
        """Absorb closed spans (per-kind counts + duration histogram)."""
        kinds = self.span_kinds
        for span in spans:
            if span.end is None:
                continue
            self.spans_folded += 1
            kinds[span.kind] = kinds.get(span.kind, 0) + 1
            self.span_seconds.observe(span.duration)

    # ------------------------------------------------------------------
    # The monoid
    # ------------------------------------------------------------------
    def spawn(self) -> "StreamingSummary":
        """A fresh identity element with this summary's configuration."""
        return StreamingSummary(sketch_capacity=self.sketch_capacity,
                                bounds=self.bounds)

    def merge(self, other: "StreamingSummary") -> None:
        """Fold another summary in (associative, commutative, exact).

        Raises:
            AnalysisError: on configuration mismatch (different sketch
                capacity or histogram bounds cannot merge losslessly).
        """
        if (other.sketch_capacity != self.sketch_capacity
                or other.bounds != self.bounds):
            raise AnalysisError(
                "cannot merge streaming summaries with different "
                "configurations")
        self.events_folded += other.events_folded
        for etype, count in other.events_by_type.items():
            self.events_by_type[etype] = (
                self.events_by_type.get(etype, 0) + count)
        self.families.merge(other.families)
        self.packet_bytes.merge(other.packet_bytes)
        self.rollup.merge(other.rollup)
        self.spans_folded += other.spans_folded
        for kind, count in other.span_kinds.items():
            self.span_kinds[kind] = self.span_kinds.get(kind, 0) + count
        self.span_seconds.merge(other.span_seconds)

    # ------------------------------------------------------------------
    # Canonical export
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "config": {"sketch_capacity": self.sketch_capacity,
                       "bounds": [_round(b) for b in self.bounds]},
            "events": {"folded": self.events_folded,
                       "by_type": dict(sorted(self.events_by_type.items()))},
            "families": self.families.as_dict(),
            "packet_bytes": _histogram_dict(self.packet_bytes),
            "turbulence": self.rollup.as_dict(),
            "spans": {"folded": self.spans_folded,
                      "by_kind": dict(sorted(self.span_kinds.items())),
                      "seconds": _histogram_dict(self.span_seconds)},
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, two-space indent) — the bytes
        the cross-path identity guarantee is stated over."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def fingerprint(self) -> str:
        """sha256 prefix of the compact canonical encoding."""
        compact = json.dumps(self.as_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(compact.encode()).hexdigest()[:16]

    def footprint(self) -> Dict[str, int]:
        """Structural size of the folded state, for flatness checks.

        Every number here is bounded by configuration (sketch capacity,
        bucket count) or by the event/span taxonomy — none may grow
        with the number of runs or events folded.
        """
        return {
            "event_types": len(self.events_by_type),
            "family_keys": len(self.families),
            "packet_buckets": len(self.packet_bytes.bucket_counts),
            "span_kinds": len(self.span_kinds),
            "span_buckets": len(self.span_seconds.bucket_counts),
        }


class StreamingSink:
    """Bus sink that folds every event straight into a summary.

    Attach one per pair run (the runner spawns a fresh per-run summary
    from the study template, attaches this sink for the run's duration,
    then detaches it and merges the run's summary into the study's) —
    nothing is buffered, so the sink's footprint is the summary's.
    """

    active = True

    def __init__(self, summary: StreamingSummary) -> None:
        self.summary = summary

    def write(self, event: TraceEvent) -> None:
        self.summary.fold(event)


def fold_events(events: Iterable[TraceEvent],
                into: Optional[StreamingSummary] = None) -> StreamingSummary:
    """Fold an event sequence into a summary (fresh by default).

    The recompute half of the ``stream-equivalence`` invariant: folding
    a run's *buffered* events must reproduce the online summary.
    """
    summary = into if into is not None else StreamingSummary()
    fold = summary.fold
    for event in events:
        fold(event)
    return summary

"""Trace-event sinks: where the bus delivers its events.

Three flavors cover the subsystem's contract:

* :class:`MemorySink` — the bounded ring buffer backing interactive
  queries (`repro telemetry` reads rebuffer timelines out of it);
* :class:`JsonlSink` — one JSON object per line, sorted keys, fixed
  float formatting, so identical seeds produce byte-identical files;
* :class:`NullSink` — reports ``active = False``, which tells the bus
  to skip event construction entirely (the zero-allocation guarantee
  the disabled path relies on).
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import Callable, Deque, List, Optional, Union

from repro.telemetry.events import TraceEvent

#: Default ring capacity: enough for a full-length pair run's media
#: events without letting a pathological run grow without bound.
DEFAULT_RING_CAPACITY = 262144


class NullSink:
    """Discards everything — and tells the bus not to bother emitting."""

    active = False

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - bus
        pass                                     # never calls an inactive sink


class MemorySink:
    """Bounded in-memory ring of the most recent events.

    ``capacity=None`` makes the ring unbounded — the parallel study
    executor uses that in worker processes, where dropping an event
    would silently diverge the merged stream from a sequential run's.
    """

    active = True

    def __init__(self,
                 capacity: Optional[int] = DEFAULT_RING_CAPACITY) -> None:
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def write(self, event: TraceEvent) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)

    def of_type(self, event_type: str) -> List[TraceEvent]:
        return [event for event in self.events if event.type == event_type]

    def __len__(self) -> int:
        return len(self.events)


def encode_event(event: TraceEvent) -> str:
    """The canonical JSON-lines encoding (sorted keys, no whitespace)."""
    return json.dumps(event.as_record(), sort_keys=True,
                      separators=(",", ":"))


class JsonlSink:
    """Writes one canonical JSON object per event line.

    Args:
        target: a path to open (closed by :meth:`close`) or an existing
            text stream (left open; the caller owns it).
    """

    active = True

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            self._stream = open(target, "w")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.lines_written = 0

    def write(self, event: TraceEvent) -> None:
        self._stream.write(encode_event(event))
        self._stream.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class FilterSink:
    """Wraps another sink, forwarding only matching event types."""

    def __init__(self, inner: object,
                 types: Optional[List[str]] = None,
                 predicate: Optional[Callable[[TraceEvent], bool]] = None,
                 ) -> None:
        self._inner = inner
        self._types = frozenset(types) if types is not None else None
        self._predicate = predicate

    @property
    def active(self) -> bool:
        return getattr(self._inner, "active", True)

    def write(self, event: TraceEvent) -> None:
        if self._types is not None and event.type not in self._types:
            return
        if self._predicate is not None and not self._predicate(event):
            return
        self._inner.write(event)

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

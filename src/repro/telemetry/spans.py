"""Causal span tracing: packet provenance from pacer to playout.

Where metrics aggregate and trace events narrate, spans *connect*: one
application data unit (ADU) leaving a server pacer opens a root span,
and everything that happens to it afterwards — IP fragmentation, each
hop's queue residency, serialization and propagation, reassembly at the
receiving host, and the wait in the player's delay buffer — is recorded
as a child span in the same trace.  The resulting forest is the
per-unit timeline the paper built by hand out of Ethereal captures and
tracker logs: it explains *where* an ADU's end-to-end latency went.

Propagation is by tagging: the pacer stores the root span on the
datagram's :class:`~repro.netsim.headers.PayloadMeta`, the sender's IP
layer stores a per-packet span on each emitted
:class:`~repro.netsim.packet.Packet`, and every instrumented layer
reads those tags behind the same ``None`` check discipline the rest of
the telemetry subsystem uses.  With no :class:`SpanRecorder` installed
the tags stay ``None`` and every instrumented path costs one attribute
load and a comparison.

All span ids and timestamps are derived from the simulation, so two
runs with the same seed produce identical forests — and byte-identical
exports (see :mod:`repro.telemetry.trace_export`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

# ----------------------------------------------------------------------
# Span taxonomy.  Constants rather than an Enum for the same reason the
# event bus uses strings: hot paths compare and serialize these.
# ----------------------------------------------------------------------

#: Root span: one application data unit leaving a server pacer.
SPAN_ADU = "adu"
#: One IP packet of an ADU (the only packet when unfragmented, one per
#: fragment otherwise).  Runs from emission to arrival at the
#: destination host (or to the drop that killed it).
SPAN_PACKET = "packet"
#: Queue residency at one link direction: offer to poll.
SPAN_QUEUE = "queue"
#: Serialization onto the wire at the link bandwidth.
SPAN_TX = "tx"
#: Propagation (plus jitter and FIFO clamping) to the next node.
SPAN_PROP = "prop"
#: The receiving host holding early fragments until the train lands.
SPAN_REASSEMBLY = "reassembly"
#: The delay buffer holding delivered media until its playout instant.
SPAN_BUFFER = "buffer"

ALL_SPAN_KINDS: Tuple[str, ...] = (
    SPAN_ADU, SPAN_PACKET, SPAN_QUEUE, SPAN_TX, SPAN_PROP,
    SPAN_REASSEMBLY, SPAN_BUFFER,
)

# Terminal statuses.  ``None`` means the span is still open.
STATUS_OK = "ok"
STATUS_DROPPED = "dropped"      # queue overflow / RED early drop
STATUS_LOST = "lost"            # loss-model discard in flight
STATUS_TIMEOUT = "timeout"      # reassembly gave up on the train
STATUS_PLAYED = "played"        # media reached its playout instant
STATUS_DISCARDED = "discarded"  # playout never started for this media


class Span:
    """One node of the provenance forest.

    A slotted plain class, like the engine's ``Event``: a full study
    creates one of these per packet per hop stage.

    Attributes:
        id: recorder-assigned monotonic id (deterministic under seed).
        trace: the root ADU span's id, shared by the whole tree.
        parent: parent span id, or ``None`` for a root.
        kind: one of the taxonomy constants above.
        start / end: simulated seconds; ``end`` is ``None`` while open.
        status: terminal status, ``None`` while open.
        attrs: free-form attributes (link label, fragment offset...).
    """

    __slots__ = ("id", "trace", "parent", "kind", "start", "end",
                 "status", "attrs")

    def __init__(self, span_id: int, trace: int, parent: Optional[int],
                 kind: str, start: float,
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.id = span_id
        self.trace = trace
        self.parent = parent
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (f"<Span #{self.id} {self.kind} trace={self.trace} "
                f"[{self.start:.6f}..{end}] {self.status or ''}>")


class SpanRecorder:
    """Collects the span forest for one (or many) instrumented runs.

    Install by constructing the :class:`~repro.telemetry.core.Telemetry`
    facade with ``spans=SpanRecorder()`` **before** building any
    topology — links, queues and IP layers cache the recorder handle at
    construction, exactly like the rest of the telemetry subsystem.

    The recorder is deliberately dumb about semantics: instrumented
    layers call the site-specific helpers below, and every helper
    guards itself, so call sites stay one-``if`` cheap.
    """

    def __init__(self) -> None:
        #: Every span ever started, in creation order (deterministic).
        self.spans: List[Span] = []
        self._next_id = 1
        self._context: Dict[str, object] = {}
        # Open per-hop spans, keyed by packet uid.  A packet traverses
        # one stage at a time, so one slot per stage suffices; router
        # copies get fresh uids, so cross-hop state never collides.
        self._open_queue: Dict[int, Span] = {}
        self._open_tx: Dict[int, Span] = {}

    # ------------------------------------------------------------------
    # Run scoping (mirrors the bus/registry context discipline)
    # ------------------------------------------------------------------
    def set_context(self, **labels: object) -> None:
        """Attributes stamped onto every *root* span from now on."""
        self._context = dict(labels)

    def clear_context(self) -> None:
        self._context = {}

    # ------------------------------------------------------------------
    # Generic span lifecycle
    # ------------------------------------------------------------------
    def start(self, kind: str, start: float, trace: Optional[int] = None,
              parent: Optional[int] = None,
              attrs: Optional[Dict[str, object]] = None) -> Span:
        """Open a span; roots (``trace=None``) start their own trace."""
        span_id = self._next_id
        self._next_id += 1
        span = Span(span_id, trace if trace is not None else span_id,
                    parent, kind, start, attrs)
        self.spans.append(span)
        return span

    @staticmethod
    def end(span: Span, end: float, status: str = STATUS_OK) -> None:
        span.end = end
        span.status = status

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # Cross-process transport (parallel studies)
    # ------------------------------------------------------------------
    def export_rows(self) -> List[Tuple]:
        """The forest as flat tuples — the snapshot wire format.

        A study's forest runs to hundreds of thousands of spans; plain
        tuples pickle an order of magnitude faster than slotted object
        instances, which is what makes shipping a worker's forest back
        to the parent cheap.
        """
        return [(span.id, span.trace, span.parent, span.kind, span.start,
                 span.end, span.status, span.attrs)
                for span in self.spans]

    def absorb_rows(self, rows: Iterable[Tuple]) -> int:
        """Adopt a worker forest from :meth:`export_rows`, rebasing ids.

        Worker ids start at 1 in every process; rebasing by this
        recorder's high-water mark reproduces, run by run, the
        contiguous id blocks a sequential sweep with one shared
        recorder would have assigned — which is what keeps parallel
        span exports byte-identical to sequential ones.

        Returns:
            The id offset applied, so callers can rebase anything else
            that captured worker-local span ids (e.g. trace records).
        """
        offset = self._next_id - 1
        highest = self._next_id - 1
        append = self.spans.append
        for span_id, trace, parent, kind, start, end, status, attrs in rows:
            span = Span(span_id + offset, trace + offset,
                        parent + offset if parent is not None else None,
                        kind, start, attrs)
            span.end = end
            span.status = status
            if span.id > highest:
                highest = span.id
            append(span)
        self._next_id = highest + 1
        return offset

    # ------------------------------------------------------------------
    # Pacer: the root of every trace
    # ------------------------------------------------------------------
    def adu_sent(self, now: float, family: str, sequence: int,
                 size_bytes: int) -> Span:
        """Open the root span for one ADU leaving a pacer."""
        attrs: Dict[str, object] = dict(self._context)
        attrs["family"] = family
        attrs["seq"] = sequence
        attrs["bytes"] = size_bytes
        return self.start(SPAN_ADU, now, attrs=attrs)

    # ------------------------------------------------------------------
    # IP send: one packet span per emitted packet
    # ------------------------------------------------------------------
    def packets_emitted(self, root: Span, now: float,
                        packets: Iterable[object]) -> None:
        """Tag each emitted packet with its own child span.

        The packet's ``uid`` is deliberately NOT recorded: uids come
        from a process-global counter, so they differ between two
        same-seed runs in one process and would break the byte-identical
        export guarantee.  ``datagram`` (the per-host IP identification)
        and ``offset`` identify the packet deterministically.
        """
        for packet in packets:
            packet.span = self.start(
                SPAN_PACKET, now, trace=root.trace, parent=root.id,
                attrs={"datagram": packet.datagram_id,
                       "offset": packet.ip.fragment_offset})

    # ------------------------------------------------------------------
    # Link / queue hop stages
    # ------------------------------------------------------------------
    def queue_entered(self, packet, now: float, link: str) -> None:
        span = packet.span
        self._open_queue[packet.uid] = self.start(
            SPAN_QUEUE, now, trace=span.trace, parent=span.id,
            attrs={"link": link})

    def queue_left(self, packet, now: float) -> None:
        span = self._open_queue.pop(packet.uid, None)
        if span is not None:
            self.end(span, now)

    def tx_started(self, packet, now: float, link: str) -> None:
        span = packet.span
        self._open_tx[packet.uid] = self.start(
            SPAN_TX, now, trace=span.trace, parent=span.id,
            attrs={"link": link})

    def tx_finished(self, packet, now: float) -> None:
        span = self._open_tx.pop(packet.uid, None)
        if span is not None:
            self.end(span, now)

    def propagated(self, packet, start: float, end: float,
                   link: str) -> None:
        """Record a propagation leg; arrival is known at send time, so
        the span is born closed."""
        span = packet.span
        prop = self.start(SPAN_PROP, start, trace=span.trace,
                          parent=span.id, attrs={"link": link})
        self.end(prop, end)

    def packet_dropped(self, packet, now: float, status: str,
                       link: str) -> None:
        """A queue or the loss model killed the packet in flight."""
        span = packet.span
        span.attrs["dropped_at"] = link
        self.end(span, now, status)

    # ------------------------------------------------------------------
    # Destination host: arrival and reassembly
    # ------------------------------------------------------------------
    def packet_arrived(self, packet, now: float) -> None:
        """The destination IP layer accepted the packet."""
        self.end(packet.span, now)

    def reassembly_started(self, root: Span, now: float,
                           host: str) -> Span:
        """First fragment of a train reached the destination; the
        caller keeps the returned span on its reassembly buffer."""
        return self.start(SPAN_REASSEMBLY, now, trace=root.trace,
                          parent=root.id, attrs={"host": host})

    def reassembly_finished(self, span: Span, now: float,
                            fragments: int) -> None:
        span.attrs["fragments"] = fragments
        self.end(span, now)

    def reassembly_timed_out(self, span: Span, now: float,
                             fragments: int) -> None:
        span.attrs["fragments"] = fragments
        self.end(span, now, STATUS_TIMEOUT)

    # ------------------------------------------------------------------
    # Player: buffer admission through playout
    # ------------------------------------------------------------------
    def buffer_admitted(self, root: Span, now: float, player: str,
                        media_begin: float) -> Span:
        """Delivered media entered the delay buffer; the player closes
        the span once the playout instant of the media is known."""
        return self.start(SPAN_BUFFER, now, trace=root.trace,
                          parent=root.id,
                          attrs={"player": player,
                                 "media_begin": media_begin})

    def buffer_released(self, span: Span, root: Span,
                        playout_time: Optional[float]) -> None:
        """Close a buffer span (and its root) at the playout instant.

        ``playout_time`` is ``None`` when playout never started — the
        media was discarded with the session, so the wait is zero and
        the status says so.
        """
        if playout_time is None:
            self.end(span, span.start, STATUS_DISCARDED)
            self.end(root, span.start, STATUS_DISCARDED)
            return
        end = max(span.start, playout_time)
        self.end(span, end, STATUS_PLAYED)
        self.end(root, end, STATUS_PLAYED)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, analyzers)
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def roots(self) -> List[Span]:
        return self.of_kind(SPAN_ADU)

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.id]

    def trace_spans(self, trace: int) -> List[Span]:
        return [span for span in self.spans if span.trace == trace]

"""Exports: deterministic JSON/CSV summaries and per-run time series.

Two invariants drive the formats here:

* **Byte-identical under a fixed seed.**  Everything exported is
  derived from simulated time and seeded randomness; keys are sorted,
  floats are rounded to fixed precision, and wall-clock material (the
  profiler) is deliberately excluded.  Two studies with the same seed
  produce the same bytes — the property the telemetry tests pin.
* **Round-trippable.**  ``load_summary(to_json(tel))`` rebuilds the
  summary dict exactly, so downstream tooling (and the `repro
  telemetry` CLI test) can consume the artifact without bespoke
  parsing.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.core import Telemetry
from repro.telemetry.events import (
    PLAYOUT_START,
    REBUFFER_START,
    REBUFFER_STOP,
    TraceEvent,
)
from repro.telemetry.registry import MetricsRegistry, format_labels

#: Exported floats are rounded to this many decimals; simulated times
#: are exact under a fixed seed, so rounding only normalizes repr noise.
FLOAT_DECIMALS = 9


def _round(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    return round(value, FLOAT_DECIMALS)


# ----------------------------------------------------------------------
# Summary (registry -> dict -> JSON/CSV)
# ----------------------------------------------------------------------

def summary_dict(telemetry: Telemetry) -> Dict[str, object]:
    """The whole registry plus event tallies as plain JSON-able data."""
    registry = telemetry.registry
    counters = [
        {"name": name, "labels": dict(labels), "value": counter.value}
        for name, labels, counter in registry.counters()
    ]
    gauges = [
        {"name": name, "labels": dict(labels),
         "last": _round(gauge.value), "peak": _round(gauge.peak),
         "samples": len(gauge.series)}
        for name, labels, gauge in registry.gauges()
    ]
    histograms = [
        {"name": name, "labels": dict(labels), "count": histogram.count,
         "sum": _round(histogram.total), "min": _round(histogram.min),
         "max": _round(histogram.max), "mean": _round(histogram.mean),
         "buckets": [[_round(bound), tally]
                     for bound, tally in zip(histogram.bounds,
                                             histogram.bucket_counts)
                     if tally > 0]}
        for name, labels, histogram in registry.histograms()
    ]
    events = telemetry.memory_events()
    by_type: Dict[str, int] = {}
    for event in events:
        by_type[event.type] = by_type.get(event.type, 0) + 1
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        # ``dropped`` counts ring-buffer truncation: nonzero means the
        # tallies above describe only the *newest* part of the stream.
        "events": {"total": len(events),
                   "dropped": telemetry.dropped_events(),
                   "by_type": dict(sorted(by_type.items()))},
    }


def to_json(telemetry: Telemetry) -> str:
    """Canonical JSON export (sorted keys, two-space indent)."""
    return json.dumps(summary_dict(telemetry), sort_keys=True, indent=2)


def load_summary(text: str) -> Dict[str, object]:
    """Parse a :func:`to_json` artifact back into its summary dict."""
    return json.loads(text)


def summary_csv(telemetry: Telemetry) -> str:
    """Counters and gauges as ``kind,name,labels,value,peak`` rows."""
    out = io.StringIO()
    out.write("kind,name,labels,value,peak\n")
    registry = telemetry.registry
    for name, labels, counter in registry.counters():
        out.write(f"counter,{name},{format_labels(labels)},"
                  f"{counter.value},\n")
    for name, labels, gauge in registry.gauges():
        out.write(f"gauge,{name},{format_labels(labels)},"
                  f"{_round(gauge.value)},{_round(gauge.peak)}\n")
    for name, labels, histogram in registry.histograms():
        out.write(f"histogram,{name},{format_labels(labels)},"
                  f"{histogram.count},{_round(histogram.max)}\n")
    out.write(f"meta,events.dropped,,{telemetry.dropped_events()},\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# Time series (gauge samples -> CSV)
# ----------------------------------------------------------------------

def series_csv(registry: MetricsRegistry,
               names: Optional[Iterable[str]] = None) -> str:
    """Retained gauge series as ``name,labels,time,value`` rows.

    Args:
        names: restrict to these gauge names (e.g. ``["queue.bytes"]``
            for the per-hop queue-depth timeline); all gauges when
            omitted.
    """
    wanted = set(names) if names is not None else None
    out = io.StringIO()
    out.write("name,labels,time,value\n")
    for name, labels, gauge in registry.gauges():
        if wanted is not None and name not in wanted:
            continue
        rendered = format_labels(labels)
        for time, value in gauge.series:
            out.write(f"{name},{rendered},{_round(time)},{_round(value)}\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# Derived timelines
# ----------------------------------------------------------------------

def rebuffer_timeline(events: Iterable[TraceEvent],
                      ) -> Dict[str, List[Tuple[str, float]]]:
    """Per-player playout/rebuffer timelines from the event stream.

    Returns:
        ``{player_label: [(event_type, sim_time), ...]}`` restricted to
        playout-start / rebuffer-start / rebuffer-stop events, in
        emission order.  The player label is the emitting buffer's
        ``player`` field (family name, plus run context when scoped).
    """
    interesting = (PLAYOUT_START, REBUFFER_START, REBUFFER_STOP)
    timelines: Dict[str, List[Tuple[str, float]]] = {}
    for event in events:
        if event.type not in interesting:
            continue
        fields = event.field_dict()
        player = str(fields.get("player", "?"))
        run = fields.get("run")
        key = f"{run}:{player}" if run is not None else player
        timelines.setdefault(key, []).append((event.type, event.time))
    return timelines

"""Span-forest exports: Chrome trace-event JSON and canonical JSONL.

Both formats follow the subsystem's export invariant: everything is
derived from simulated time and recorder-assigned ids, keys are sorted,
and floats are rounded to fixed precision, so two same-seed runs
produce byte-identical artifacts.

The Chrome trace-event file loads directly in Perfetto (or
``chrome://tracing``): each ``(run, family)`` pair becomes a process,
every ADU gets a track for its root/reassembly/buffer spans, and every
packet gets a track on which its queue → tx → prop stages tile — the
per-hop waterfall, zoomable.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.spans import (
    SPAN_ADU,
    SPAN_BUFFER,
    SPAN_PACKET,
    SPAN_REASSEMBLY,
    Span,
    SpanRecorder,
)

#: Matches the rest of the telemetry exporters.
FLOAT_DECIMALS = 9


def _round(value: float) -> float:
    return round(value, FLOAT_DECIMALS)


def _micros(seconds: float) -> float:
    """Simulated seconds -> trace-event microseconds, normalized."""
    return round(seconds * 1e6, 3)


def _span_name(span: Span) -> str:
    if span.kind == SPAN_ADU:
        return f"adu#{span.attrs.get('seq', '?')}"
    if span.kind == SPAN_PACKET:
        offset = span.attrs.get("offset", 0)
        return f"frag@{offset}" if offset else "packet"
    link = span.attrs.get("link")
    return f"{span.kind} {link}" if link is not None else span.kind


def _process_key(span: Span) -> str:
    family = str(span.attrs.get("family", "?"))
    run = span.attrs.get("run")
    return f"{run}:{family}" if run is not None else family


def chrome_trace(recorder: SpanRecorder) -> str:
    """The span forest as Chrome trace-event JSON (Perfetto-loadable).

    Only closed spans are exported — an open span has no duration to
    draw, and skipping them keeps the artifact deterministic even when
    a run is cut short mid-flight.
    """
    # Processes are (run, family) pairs, discovered from roots in
    # creation order so pids are stable under a fixed seed.
    pids: Dict[int, int] = {}        # trace id -> pid
    process_names: Dict[int, str] = {}
    next_pid = 1
    for span in recorder.spans:
        if span.kind != SPAN_ADU:
            continue
        key = _process_key(span)
        pid = next((p for p, name in process_names.items() if name == key),
                   None)
        if pid is None:
            pid = next_pid
            next_pid += 1
            process_names[pid] = key
        pids[span.trace] = pid

    events: List[Dict[str, object]] = []
    for pid in sorted(process_names):
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": process_names[pid]}})

    # Track layout: the ADU's own lifecycle (root, reassembly, buffer)
    # shares the root's track; each packet's stages tile on the packet
    # span's track, nesting under the packet span itself.
    for span in recorder.spans:
        if not span.closed:
            continue
        pid = pids.get(span.trace)
        if pid is None:
            continue
        if span.kind in (SPAN_ADU, SPAN_REASSEMBLY, SPAN_BUFFER):
            tid = span.trace
        elif span.kind == SPAN_PACKET:
            tid = span.id
        else:  # queue / tx / prop ride their packet's track
            tid = span.parent
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        if span.status is not None:
            args["status"] = span.status
        events.append({"ph": "X", "pid": pid, "tid": tid,
                       "ts": _micros(span.start),
                       "dur": _micros(span.duration),
                       "cat": span.kind, "name": _span_name(span),
                       "args": args})
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      sort_keys=True, separators=(",", ":"))


def span_record(span: Span) -> Dict[str, object]:
    """One span as the flat dict the JSONL export encodes."""
    record: Dict[str, object] = {
        "id": span.id, "trace": span.trace, "kind": span.kind,
        "start": _round(span.start),
    }
    if span.parent is not None:
        record["parent"] = span.parent
    if span.end is not None:
        record["end"] = _round(span.end)
    if span.status is not None:
        record["status"] = span.status
    for key in sorted(span.attrs):
        record[f"attr.{key}"] = span.attrs[key]
    return record


def spans_jsonl(recorder: SpanRecorder) -> str:
    """One canonical JSON object per span, in creation order."""
    lines = [json.dumps(span_record(span), sort_keys=True,
                        separators=(",", ":"))
             for span in recorder.spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_chrome_trace(recorder: SpanRecorder, path: str) -> None:
    with open(path, "w") as stream:
        stream.write(chrome_trace(recorder))


def write_spans_jsonl(recorder: SpanRecorder, path: str) -> None:
    with open(path, "w") as stream:
        stream.write(spans_jsonl(recorder))

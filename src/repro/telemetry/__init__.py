"""Simulation-time-aware metrics, tracing, and profiling.

The observability subsystem the measurement pipeline itself runs on:

* :mod:`~repro.telemetry.registry` — counters, gauges, streaming
  histograms keyed by ``(name, labels)``, stamped in simulated time;
* :mod:`~repro.telemetry.events` — the typed trace-event bus
  (``packet_enqueued``, ``queue_drop``, ``rebuffer_start``...);
* :mod:`~repro.telemetry.sinks` — in-memory ring, JSON-lines, null;
* :mod:`~repro.telemetry.profiler` — event-loop wall-clock sampling;
* :mod:`~repro.telemetry.exporters` — deterministic JSON/CSV artifacts;
* :mod:`~repro.telemetry.spans` — causal span tracing: one trace per
  ADU, pacer → fragments → hops → reassembly → playout;
* :mod:`~repro.telemetry.critical_path` — per-ADU latency attribution
  (queueing / serialization / propagation / reassembly / buffer);
* :mod:`~repro.telemetry.trace_export` — Chrome trace-event (Perfetto)
  and JSONL span exports, byte-identical under a fixed seed;
* :mod:`~repro.telemetry.core` — the :class:`Telemetry` facade every
  instrumented layer holds behind a ``None`` check;
* :mod:`~repro.telemetry.streaming` — bounded-memory online folds:
  mergeable :class:`StreamingSummary` (counters-by-type, heavy-hitter
  sketch, turbulence roll-up) with byte-identical output across
  sequential / parallel / cached execution.

Everything is opt-in: construct a :class:`Telemetry`, hand it to
``Simulator(seed, telemetry=...)`` (or ``run_study(telemetry=...)``),
and the hot layers light up.  Without it, the instrumented paths cost
one attribute load and a ``None`` check.
"""

from repro.telemetry.core import Telemetry, TelemetrySnapshot
from repro.telemetry.critical_path import (
    AduLatency,
    HopTiming,
    aggregate_attribution,
    attribute_latency,
    attribution_dict,
    slowest,
)
from repro.telemetry.events import (
    ABR_SEGMENT,
    ABR_SWITCH,
    ALL_EVENT_TYPES,
    CC_STATE,
    FRAGMENT_EMITTED,
    PACKET_DELIVERED,
    PACKET_ENQUEUED,
    PACKET_LOSS,
    PLAYOUT_START,
    QUEUE_DROP,
    RATE_SWITCH,
    REASSEMBLY_TIMEOUT,
    REBUFFER_START,
    REBUFFER_STOP,
    STREAM_END,
    STREAM_START,
    TraceEvent,
    TraceEventBus,
)
from repro.telemetry.exporters import (
    load_summary,
    rebuffer_timeline,
    series_csv,
    summary_csv,
    summary_dict,
    to_json,
)
from repro.telemetry.profiler import ProfileReport, SimProfiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import (
    FilterSink,
    JsonlSink,
    MemorySink,
    NullSink,
)
from repro.telemetry.streaming import (
    ExactSumHistogram,
    StreamingSink,
    StreamingSummary,
    TopKSketch,
    TurbulenceRollup,
    fold_events,
)
from repro.telemetry.spans import (
    ALL_SPAN_KINDS,
    SPAN_ADU,
    SPAN_BUFFER,
    SPAN_PACKET,
    SPAN_PROP,
    SPAN_QUEUE,
    SPAN_REASSEMBLY,
    SPAN_TX,
    Span,
    SpanRecorder,
)
from repro.telemetry.trace_export import (
    chrome_trace,
    span_record,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "ABR_SEGMENT",
    "ABR_SWITCH",
    "ALL_EVENT_TYPES",
    "ALL_SPAN_KINDS",
    "AduLatency",
    "CC_STATE",
    "Counter",
    "ExactSumHistogram",
    "FRAGMENT_EMITTED",
    "FilterSink",
    "Gauge",
    "Histogram",
    "HopTiming",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PACKET_DELIVERED",
    "PACKET_ENQUEUED",
    "PACKET_LOSS",
    "PLAYOUT_START",
    "ProfileReport",
    "QUEUE_DROP",
    "RATE_SWITCH",
    "REASSEMBLY_TIMEOUT",
    "REBUFFER_START",
    "REBUFFER_STOP",
    "SPAN_ADU",
    "SPAN_BUFFER",
    "SPAN_PACKET",
    "SPAN_PROP",
    "SPAN_QUEUE",
    "SPAN_REASSEMBLY",
    "SPAN_TX",
    "STREAM_END",
    "STREAM_START",
    "SimProfiler",
    "Span",
    "SpanRecorder",
    "StreamingSink",
    "StreamingSummary",
    "Telemetry",
    "TelemetrySnapshot",
    "TopKSketch",
    "TraceEvent",
    "TraceEventBus",
    "TurbulenceRollup",
    "aggregate_attribution",
    "fold_events",
    "attribute_latency",
    "attribution_dict",
    "chrome_trace",
    "load_summary",
    "rebuffer_timeline",
    "series_csv",
    "slowest",
    "span_record",
    "spans_jsonl",
    "summary_csv",
    "summary_dict",
    "to_json",
    "write_chrome_trace",
    "write_spans_jsonl",
]

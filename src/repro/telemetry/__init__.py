"""Simulation-time-aware metrics, tracing, and profiling.

The observability subsystem the measurement pipeline itself runs on:

* :mod:`~repro.telemetry.registry` — counters, gauges, streaming
  histograms keyed by ``(name, labels)``, stamped in simulated time;
* :mod:`~repro.telemetry.events` — the typed trace-event bus
  (``packet_enqueued``, ``queue_drop``, ``rebuffer_start``...);
* :mod:`~repro.telemetry.sinks` — in-memory ring, JSON-lines, null;
* :mod:`~repro.telemetry.profiler` — event-loop wall-clock sampling;
* :mod:`~repro.telemetry.exporters` — deterministic JSON/CSV artifacts;
* :mod:`~repro.telemetry.core` — the :class:`Telemetry` facade every
  instrumented layer holds behind a ``None`` check.

Everything is opt-in: construct a :class:`Telemetry`, hand it to
``Simulator(seed, telemetry=...)`` (or ``run_study(telemetry=...)``),
and the hot layers light up.  Without it, the instrumented paths cost
one attribute load and a ``None`` check.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.events import (
    ALL_EVENT_TYPES,
    FRAGMENT_EMITTED,
    PACKET_DELIVERED,
    PACKET_ENQUEUED,
    PACKET_LOSS,
    PLAYOUT_START,
    QUEUE_DROP,
    RATE_SWITCH,
    REASSEMBLY_TIMEOUT,
    REBUFFER_START,
    REBUFFER_STOP,
    STREAM_END,
    STREAM_START,
    TraceEvent,
    TraceEventBus,
)
from repro.telemetry.exporters import (
    load_summary,
    rebuffer_timeline,
    series_csv,
    summary_csv,
    summary_dict,
    to_json,
)
from repro.telemetry.profiler import ProfileReport, SimProfiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import (
    FilterSink,
    JsonlSink,
    MemorySink,
    NullSink,
)

__all__ = [
    "ALL_EVENT_TYPES",
    "Counter",
    "FRAGMENT_EMITTED",
    "FilterSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PACKET_DELIVERED",
    "PACKET_ENQUEUED",
    "PACKET_LOSS",
    "PLAYOUT_START",
    "ProfileReport",
    "QUEUE_DROP",
    "RATE_SWITCH",
    "REASSEMBLY_TIMEOUT",
    "REBUFFER_START",
    "REBUFFER_STOP",
    "STREAM_END",
    "STREAM_START",
    "SimProfiler",
    "Telemetry",
    "TraceEvent",
    "TraceEventBus",
    "load_summary",
    "rebuffer_timeline",
    "series_csv",
    "summary_csv",
    "summary_dict",
    "to_json",
]

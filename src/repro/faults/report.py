"""Recovery reports: what the stack did about the injected faults.

Distills a run's trace-event stream into the fault-tolerance numbers
the robustness work is judged by: how long routing took to re-converge
after each link event, how quickly the players fell into rebuffering
and how long each episode lasted, what the quality ladder did, and
which last-resort mechanisms (stall watchdog, keepalive loss, EOS
timeout, TCP aborts) had to fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import (
    EOS_TIMEOUT,
    FAULT_INJECTED,
    KEEPALIVE_MISS,
    LINK_DOWN,
    LINK_UP,
    NACK_SENT,
    PLAYER_STALLED,
    QUALITY_DOWNSHIFT,
    QUALITY_UPSHIFT,
    REBUFFER_START,
    REBUFFER_STOP,
    REPAIR_ABANDONED,
    REPAIR_RECOVERED,
    RETRANSMIT_SENT,
    ROUTE_RECONVERGED,
    SESSION_LOST,
    TCP_ABORT,
    TCP_RETRANSMIT,
    TraceEvent,
)


@dataclass(frozen=True)
class RebufferEpisode:
    """One playback interruption, per player."""

    player: str
    started_at: float
    ended_at: Optional[float]  # None: never recovered before run end

    @property
    def duration(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at


@dataclass(frozen=True)
class RecoveryReport:
    """The measured robustness response to one run's faults."""

    scenario: str
    faults: Tuple[Tuple[float, str, str], ...]  # (time, action, target)
    reconvergence_times: Tuple[float, ...]  # link event -> tables rebuilt
    rebuffer_episodes: Tuple[RebufferEpisode, ...]
    time_to_first_rebuffer: Optional[float]  # first fault -> first stall
    downshifts: int
    upshifts: int
    tcp_retransmits: int
    tcp_aborts: int
    keepalive_misses: int
    sessions_lost: int
    player_stalls: int
    eos_timeouts: int
    #: Loss-repair response (zero on runs without the repair stack):
    #: media sequences rebuilt before their frame deadlines vs. given
    #: up on, and the NACK/retransmit traffic that achieved it.
    recovered_packets: int = 0
    repairs_abandoned: int = 0
    nacks_sent: int = 0
    retransmits_sent: int = 0

    @property
    def recovered_episodes(self) -> Tuple[RebufferEpisode, ...]:
        return tuple(e for e in self.rebuffer_episodes
                     if e.ended_at is not None)

    @property
    def repair_ratio(self) -> Optional[float]:
        """Recovered share of the sequences repair settled, or None
        when the repair stack never acted."""
        settled = self.recovered_packets + self.repairs_abandoned
        if settled == 0:
            return None
        return self.recovered_packets / settled

    def render(self) -> str:
        lines: List[str] = []
        lines.append(f"fault scenario: {self.scenario or '(none)'}")
        lines.append(f"  faults injected: {len(self.faults)}")
        for time, action, target in self.faults:
            lines.append(f"    t={time:8.3f}s  {action} -> {target}")
        if self.reconvergence_times:
            joined = ", ".join(f"{t:.3f}s"
                               for t in self.reconvergence_times)
            lines.append(f"  route re-convergence: {joined}")
        if self.time_to_first_rebuffer is not None:
            lines.append(f"  time to first rebuffer: "
                         f"{self.time_to_first_rebuffer:.3f}s after fault")
        for episode in self.rebuffer_episodes:
            if episode.ended_at is None:
                lines.append(f"  rebuffer [{episode.player}]: "
                             f"t={episode.started_at:.3f}s, never recovered")
            else:
                lines.append(f"  rebuffer [{episode.player}]: "
                             f"t={episode.started_at:.3f}s, recovered in "
                             f"{episode.duration:.3f}s")
        lines.append(f"  quality shifts: {self.downshifts} down, "
                     f"{self.upshifts} up")
        lines.append(f"  control plane: {self.tcp_retransmits} TCP "
                     f"retransmits, {self.tcp_aborts} aborts, "
                     f"{self.keepalive_misses} keepalive misses")
        lines.append(f"  last resorts: {self.sessions_lost} sessions lost, "
                     f"{self.player_stalls} stalls, "
                     f"{self.eos_timeouts} EOS timeouts")
        ratio = self.repair_ratio
        if ratio is not None:
            lines.append(f"  loss repair: {self.recovered_packets} "
                         f"recovered, {self.repairs_abandoned} abandoned "
                         f"({100.0 * ratio:.1f}% repaired) via "
                         f"{self.nacks_sent} NACKs, "
                         f"{self.retransmits_sent} retransmits")
        return "\n".join(lines)


def recovery_report(events: List[TraceEvent],
                    scenario: str = "") -> RecoveryReport:
    """Build a recovery report from a run's trace events (in order)."""
    faults: List[Tuple[float, str, str]] = []
    reconvergence: List[float] = []
    last_link_event: Optional[float] = None
    open_rebuffers: Dict[str, float] = {}
    episodes: List[RebufferEpisode] = []
    first_fault_at: Optional[float] = None
    first_rebuffer_after_fault: Optional[float] = None
    downshifts = upshifts = 0
    retransmits = aborts = misses = lost = stalls = eos_timeouts = 0
    recovered = abandoned = nacks = rtx_sent = 0

    for event in events:
        fields = event.field_dict()
        if event.type == FAULT_INJECTED:
            faults.append((event.time, str(fields.get("action", "?")),
                           str(fields.get("target", "?"))))
            if first_fault_at is None:
                first_fault_at = event.time
        elif event.type in (LINK_DOWN, LINK_UP):
            last_link_event = event.time
        elif event.type == ROUTE_RECONVERGED:
            if last_link_event is not None:
                reconvergence.append(event.time - last_link_event)
                last_link_event = None
        elif event.type == REBUFFER_START:
            player = str(fields.get("player", ""))
            open_rebuffers.setdefault(player, event.time)
            if (first_fault_at is not None
                    and first_rebuffer_after_fault is None
                    and event.time >= first_fault_at):
                first_rebuffer_after_fault = event.time - first_fault_at
        elif event.type == REBUFFER_STOP:
            player = str(fields.get("player", ""))
            started = open_rebuffers.pop(player, None)
            if started is not None:
                episodes.append(RebufferEpisode(player=player,
                                                started_at=started,
                                                ended_at=event.time))
        elif event.type == QUALITY_DOWNSHIFT:
            downshifts += 1
        elif event.type == QUALITY_UPSHIFT:
            upshifts += 1
        elif event.type == TCP_RETRANSMIT:
            retransmits += int(fields.get("segments", 1))
        elif event.type == TCP_ABORT:
            aborts += 1
        elif event.type == KEEPALIVE_MISS:
            misses += 1
        elif event.type == SESSION_LOST:
            lost += 1
        elif event.type == PLAYER_STALLED:
            stalls += 1
        elif event.type == EOS_TIMEOUT:
            eos_timeouts += 1
        elif event.type == REPAIR_RECOVERED:
            recovered += 1
        elif event.type == REPAIR_ABANDONED:
            abandoned += 1
        elif event.type == NACK_SENT:
            nacks += 1
        elif event.type == RETRANSMIT_SENT:
            rtx_sent += 1

    for player, started in sorted(open_rebuffers.items()):
        episodes.append(RebufferEpisode(player=player, started_at=started,
                                        ended_at=None))
    episodes.sort(key=lambda e: (e.started_at, e.player))

    return RecoveryReport(
        scenario=scenario,
        faults=tuple(faults),
        reconvergence_times=tuple(reconvergence),
        rebuffer_episodes=tuple(episodes),
        time_to_first_rebuffer=first_rebuffer_after_fault,
        downshifts=downshifts, upshifts=upshifts,
        tcp_retransmits=retransmits, tcp_aborts=aborts,
        keepalive_misses=misses, sessions_lost=lost,
        player_stalls=stalls, eos_timeouts=eos_timeouts,
        recovered_packets=recovered, repairs_abandoned=abandoned,
        nacks_sent=nacks, retransmits_sent=rtx_sent)

"""repro.faults — deterministic, seed-driven fault injection.

Three pieces, mirroring the subsystem's three jobs:

* :mod:`repro.faults.scenario` — *what happens*: declarative,
  picklable :class:`FaultScenario` schedules derived from the study
  seed, with named builders (``link-flap``, ``degrade``, ...).
* :mod:`repro.faults.controller` — *making it happen*: the
  :class:`FaultController` arms a scenario on a live simulation and
  executes the primitives against links, servers, and cross traffic.
* :mod:`repro.faults.report` — *what the stack did about it*: the
  :func:`recovery_report` distilled from the run's trace events.
"""

from repro.faults.controller import FaultController
from repro.faults.report import RebufferEpisode, RecoveryReport, recovery_report
from repro.faults.scenario import (
    FaultEvent,
    FaultScenario,
    SCENARIO_BUILDERS,
    build_scenario,
    scenario_names,
)

__all__ = [
    "FaultController",
    "FaultEvent",
    "FaultScenario",
    "RebufferEpisode",
    "RecoveryReport",
    "SCENARIO_BUILDERS",
    "build_scenario",
    "recovery_report",
    "scenario_names",
]

"""The fault controller: executes a scenario against a live topology.

The controller is the only piece of :mod:`repro.faults` that touches
simulation objects.  It resolves each event's symbolic target
(``"middle"``, ``"real"``...) against the handles the experiment
runner gives it, schedules every event at ``at_frac × reference
duration``, and executes the primitives — link state, degradation,
loss-model swaps, cross-traffic surges, server pause/crash — emitting
one ``fault_injected`` trace event per execution so the recovery
report can line faults up against the stack's responses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ReproError
from repro.faults.scenario import (
    BURST_LOSS_OFF,
    BURST_LOSS_ON,
    FaultEvent,
    FaultScenario,
    LINK_DOWN_ACTION,
    LINK_UP_ACTION,
    SERVER_CRASH,
    SERVER_PAUSE,
    SERVER_RESTART,
    SERVER_RESUME,
    SET_BANDWIDTH,
    SET_DELAY,
    SURGE_OFF,
    SURGE_ON,
)
from repro.netsim.link import GilbertElliottLossModel, Link
from repro.telemetry.events import FAULT_INJECTED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.engine import Simulator
    from repro.netsim.node import Host


class FaultController:
    """Arms one scenario on one simulation.

    Args:
        sim: the run's simulator.
        scenario: the declarative schedule to execute.
        links: symbolic link roles -> :class:`Link` (the runner maps
            ``"access"``, ``"middle"``, ...).
        servers: symbolic server roles -> streaming servers (``"real"``,
            ``"wmp"``).
        surge_endpoints: ``(sender, receiver)`` hosts for cross-traffic
            surges (usually a server and the client, so the surge
            shares the whole path).
        reference_duration: the clip duration the events' ``at_frac``
            fractions multiply against.
    """

    def __init__(self, sim: "Simulator", scenario: FaultScenario,
                 links: Optional[Dict[str, Link]] = None,
                 servers: Optional[Dict[str, object]] = None,
                 surge_endpoints: Optional[tuple] = None,
                 reference_duration: float = 60.0) -> None:
        if reference_duration <= 0:
            raise ReproError("reference duration must be positive")
        self.sim = sim
        self.scenario = scenario
        self.links = links or {}
        self.servers = servers or {}
        self.surge_endpoints = surge_endpoints
        self.reference_duration = reference_duration
        self.executed = 0
        self._armed = False
        self._saved_loss: Dict[str, object] = {}
        self._saved_bandwidth: Dict[str, float] = {}
        self._saved_delay: Dict[str, float] = {}
        self._surge = None

    def arm(self) -> "FaultController":
        """Schedule every event of the scenario, relative to now."""
        if self._armed:
            raise ReproError("fault controller already armed")
        self._armed = True
        base = self.sim.now
        for event in self.scenario.events:
            self.sim.schedule_at(
                base + event.at_frac * self.reference_duration,
                self._execute, event)
        if self.sim.fast_path is not None:
            self._register_blackouts(base)
        return self

    def _register_blackouts(self, base: float) -> None:
        """Tell the flow-level director when the network is not clean.

        The whole schedule is known at arm time, so the windows are
        registered up front: every state-degrading action opens one,
        every restoring action closes the innermost, and a window
        nobody closes stays open to infinity.  Conservative on purpose
        — a surge's *scheduled* span blacks out the fast path even
        while the Pareto source idles between bursts.
        """
        opening = {LINK_DOWN_ACTION, BURST_LOSS_ON, SURGE_ON,
                   SERVER_PAUSE, SERVER_CRASH}
        closing = {LINK_UP_ACTION, BURST_LOSS_OFF, SURGE_OFF,
                   SERVER_RESUME, SERVER_RESTART}
        director = self.sim.fast_path
        depth = 0
        start = None
        for event in sorted(self.scenario.events, key=lambda e: e.at_frac):
            when = base + event.at_frac * self.reference_duration
            action = event.action
            if action in (SET_BANDWIDTH, SET_DELAY):
                restores = bool(event.param_dict().get("restore"))
                action_opens = not restores
            elif action in opening:
                action_opens = True
            elif action in closing:
                action_opens = False
            else:  # pragma: no cover - future scenario actions
                action_opens = True
            if action_opens:
                if depth == 0:
                    start = when
                depth += 1
            elif depth > 0:
                depth -= 1
                if depth == 0:
                    director.add_blackout(start, when)
                    start = None
        if depth > 0 and start is not None:
            director.add_blackout(start, float("inf"))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, event: FaultEvent) -> None:
        handler = {
            LINK_DOWN_ACTION: self._link_down,
            LINK_UP_ACTION: self._link_up,
            SET_BANDWIDTH: self._set_bandwidth,
            SET_DELAY: self._set_delay,
            BURST_LOSS_ON: self._burst_loss_on,
            BURST_LOSS_OFF: self._burst_loss_off,
            SURGE_ON: self._surge_on,
            SURGE_OFF: self._surge_off,
            SERVER_PAUSE: self._server_pause,
            SERVER_RESUME: self._server_resume,
            SERVER_CRASH: self._server_crash,
            SERVER_RESTART: self._server_restart,
        }[event.action]
        if self.sim.telemetry is not None:
            self.sim.telemetry.emit(FAULT_INJECTED,
                                    scenario=self.scenario.name,
                                    action=event.action,
                                    target=event.target)
        handler(event)
        self.executed += 1

    def _link(self, event: FaultEvent) -> Link:
        link = self.links.get(event.target)
        if link is None:
            raise ReproError(
                f"scenario {self.scenario.name!r} targets unknown link "
                f"role {event.target!r} (have: {sorted(self.links)})")
        return link

    def _server(self, event: FaultEvent):
        server = self.servers.get(event.target)
        if server is None:
            raise ReproError(
                f"scenario {self.scenario.name!r} targets unknown server "
                f"role {event.target!r} (have: {sorted(self.servers)})")
        return server

    # --- link primitives ----------------------------------------------
    def _link_down(self, event: FaultEvent) -> None:
        self._link(event).set_up(False)

    def _link_up(self, event: FaultEvent) -> None:
        self._link(event).set_up(True)

    def _set_bandwidth(self, event: FaultEvent) -> None:
        link = self._link(event)
        params = event.param_dict()
        if params.get("restore"):
            original = self._saved_bandwidth.pop(event.target, None)
            if original is not None:
                link.set_bandwidth(original)
            return
        self._saved_bandwidth.setdefault(event.target, link.bandwidth_bps)
        link.set_bandwidth(float(params["bandwidth_bps"]))

    def _set_delay(self, event: FaultEvent) -> None:
        link = self._link(event)
        params = event.param_dict()
        if params.get("restore"):
            original = self._saved_delay.pop(event.target, None)
            if original is not None:
                link.set_propagation_delay(original)
            return
        self._saved_delay.setdefault(event.target, link.propagation_delay)
        link.set_propagation_delay(float(params["delay"]))

    def _burst_loss_on(self, event: FaultEvent) -> None:
        link = self._link(event)
        params = event.param_dict()
        self._saved_loss.setdefault(event.target, link._forward._loss)
        link.set_loss(GilbertElliottLossModel(
            p_good_bad=float(params.get("p_good_bad", 0.05)),
            p_bad_good=float(params.get("p_bad_good", 0.4)),
            loss_good=float(params.get("loss_good", 0.0)),
            loss_bad=float(params.get("loss_bad", 0.5)),
            rng=self.sim.streams.stream("fault-burst-loss")))

    def _burst_loss_off(self, event: FaultEvent) -> None:
        original = self._saved_loss.pop(event.target, None)
        if original is not None:
            self._link(event).set_loss(original)

    # --- cross-traffic surge ------------------------------------------
    def _surge_on(self, event: FaultEvent) -> None:
        from repro.netsim.crosstraffic import OnOffParetoSource

        if self.surge_endpoints is None:
            raise ReproError(
                f"scenario {self.scenario.name!r} needs surge endpoints "
                "but none were provided")
        if self._surge is not None:
            return
        sender, receiver = self.surge_endpoints
        params = event.param_dict()
        self._surge = OnOffParetoSource(
            self.sim, sender, receiver,
            rate_bps=float(params.get("rate_bps", 8e6)),
            mean_on=float(params.get("mean_on", 1.0)),
            mean_off=float(params.get("mean_off", 1.0)),
            rng=self.sim.streams.stream("fault-surge")).start()

    def _surge_off(self, event: FaultEvent) -> None:
        if self._surge is not None:
            self._surge.stop()
            self._surge = None

    # --- server primitives --------------------------------------------
    def _server_pause(self, event: FaultEvent) -> None:
        self._server(event).pause_all()

    def _server_resume(self, event: FaultEvent) -> None:
        self._server(event).resume_all()

    def _server_crash(self, event: FaultEvent) -> None:
        self._server(event).crash()

    def _server_restart(self, event: FaultEvent) -> None:
        self._server(event).restart()

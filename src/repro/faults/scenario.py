"""Declarative fault scenarios: pure data, derived from the seed.

A :class:`FaultScenario` is to turbulence what
:func:`~repro.experiments.runner.study_conditions` is to conditions: a
picklable value fully determined by ``(name, seed)``, so any process —
the sequential loop, a pool worker, a test — can rebuild the exact
same schedule independently.  Event times are *fractions of the clip
duration* (``at_frac``), which keeps one scenario meaningful at every
``duration_scale``; the :class:`~repro.faults.controller.FaultController`
multiplies them out against the run's reference duration when it arms.

The named builders in :data:`SCENARIO_BUILDERS` cover the turbulence
families the paper's products must survive: a link flap, mid-run
bandwidth/latency degradation, Gilbert–Elliott burst loss, a
queue-pressure surge from cross traffic, and a server pause or
crash-restart.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro import units
from repro.errors import ReproError

# ----------------------------------------------------------------------
# Actions the controller knows how to execute
# ----------------------------------------------------------------------

LINK_DOWN_ACTION = "link_down"
LINK_UP_ACTION = "link_up"
SET_BANDWIDTH = "set_bandwidth"
SET_DELAY = "set_delay"
BURST_LOSS_ON = "burst_loss_on"
BURST_LOSS_OFF = "burst_loss_off"
SURGE_ON = "surge_on"
SURGE_OFF = "surge_off"
SERVER_PAUSE = "server_pause"
SERVER_RESUME = "server_resume"
SERVER_CRASH = "server_crash"
SERVER_RESTART = "server_restart"

ALL_ACTIONS: Tuple[str, ...] = (
    LINK_DOWN_ACTION, LINK_UP_ACTION, SET_BANDWIDTH, SET_DELAY,
    BURST_LOSS_ON, BURST_LOSS_OFF, SURGE_ON, SURGE_OFF,
    SERVER_PAUSE, SERVER_RESUME, SERVER_CRASH, SERVER_RESTART,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    Attributes:
        at_frac: when to fire, as a fraction of the run's reference
            duration (the clip length), so scenarios scale with
            ``duration_scale``.
        action: one of :data:`ALL_ACTIONS`.
        target: what to hit — a link role (``"middle"``, ``"access"``)
            or a server role (``"real"``, ``"wmp"``), resolved by the
            controller.
        params: action parameters as a sorted tuple of pairs (kept as
            a tuple, not a dict, so the event hashes and pickles
            canonically).
    """

    at_frac: float
    action: str
    target: str = "middle"
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Inclusive bounds: 0.0 (run start) and 1.0 (the reference
        # duration) are legal firing points; the comparison also
        # rejects NaN, which satisfies neither side.
        if not 0.0 <= self.at_frac <= 1.0:
            raise ReproError(f"at_frac must be in [0, 1]: {self.at_frac}")
        if self.action not in ALL_ACTIONS:
            raise ReproError(f"unknown fault action {self.action!r}")

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class FaultScenario:
    """A named, ordered schedule of fault events.

    Pure data: picklable, hashable, and fingerprintable, so study
    cache keys can incorporate it (a cached no-fault sweep must never
    alias a faulted one).
    """

    name: str
    events: Tuple[FaultEvent, ...] = ()
    description: str = ""

    def fingerprint(self) -> str:
        """A stable digest of the schedule (cache keying)."""
        material = json.dumps(
            [{"at_frac": event.at_frac, "action": event.action,
              "target": event.target, "params": list(event.params)}
             for event in self.events],
            sort_keys=True)
        digest = hashlib.sha256(
            (self.name + "\n" + material).encode()).hexdigest()[:16]
        return f"{self.name}:{digest}"


def _params(**kwargs: object) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


# ----------------------------------------------------------------------
# Seed-derived builders
# ----------------------------------------------------------------------

def build_link_flap(seed: int) -> FaultScenario:
    """The canonical scenario: the middle link drops, then recovers.

    The outage lands squarely in steady-state playback (past the
    preroll burst) and lasts long enough to drain a several-second
    delay buffer, so route re-convergence, rebuffering, and a quality
    downshift are all on display.
    """
    rng = random.Random(seed * 48271 + 11)
    down_at = rng.uniform(0.28, 0.38)
    # Longer than the players' 5 s preroll buffer even on the shortest
    # (test-scaled, ~30 s) clips, so the outage always reaches playout.
    outage = rng.uniform(0.22, 0.30)
    return FaultScenario(
        name="link-flap",
        description="middle link down, then up after a drained-buffer "
                    "outage",
        events=(
            FaultEvent(at_frac=down_at, action=LINK_DOWN_ACTION,
                       target="middle"),
            FaultEvent(at_frac=down_at + outage, action=LINK_UP_ACTION,
                       target="middle"),
        ))


def build_degrade(seed: int) -> FaultScenario:
    """Mid-run path degradation: the middle link loses most of its
    bandwidth and gains latency, then recovers."""
    rng = random.Random(seed * 48271 + 23)
    start = rng.uniform(0.30, 0.40)
    length = rng.uniform(0.18, 0.28)
    degraded_bps = units.kbps(rng.uniform(160.0, 260.0))
    degraded_delay = rng.uniform(0.030, 0.060)
    return FaultScenario(
        name="degrade",
        description="middle-link bandwidth collapse + latency spike, "
                    "then recovery",
        events=(
            FaultEvent(at_frac=start, action=SET_BANDWIDTH, target="middle",
                       params=_params(bandwidth_bps=degraded_bps)),
            FaultEvent(at_frac=start, action=SET_DELAY, target="middle",
                       params=_params(delay=degraded_delay)),
            FaultEvent(at_frac=start + length, action=SET_BANDWIDTH,
                       target="middle", params=_params(restore=True)),
            FaultEvent(at_frac=start + length, action=SET_DELAY,
                       target="middle", params=_params(restore=True)),
        ))


def build_burst_loss(seed: int) -> FaultScenario:
    """Gilbert–Elliott burst loss on the middle link for a window."""
    rng = random.Random(seed * 48271 + 37)
    start = rng.uniform(0.25, 0.35)
    length = rng.uniform(0.20, 0.30)
    p_good_bad = rng.uniform(0.04, 0.08)
    p_bad_good = rng.uniform(0.30, 0.50)
    loss_bad = rng.uniform(0.35, 0.55)
    return FaultScenario(
        name="burst-loss",
        description="Gilbert-Elliott burst-loss episode on the middle "
                    "link",
        events=(
            FaultEvent(at_frac=start, action=BURST_LOSS_ON, target="middle",
                       params=_params(p_good_bad=round(p_good_bad, 6),
                                      p_bad_good=round(p_bad_good, 6),
                                      loss_bad=round(loss_bad, 6))),
            FaultEvent(at_frac=start + length, action=BURST_LOSS_OFF,
                       target="middle"),
        ))


def build_congestion_surge(seed: int) -> FaultScenario:
    """Queue pressure: an on/off Pareto source floods the path."""
    rng = random.Random(seed * 48271 + 53)
    start = rng.uniform(0.25, 0.35)
    length = rng.uniform(0.25, 0.35)
    rate_bps = units.mbps(rng.uniform(6.0, 9.0))
    return FaultScenario(
        name="congestion-surge",
        description="on/off Pareto cross-traffic surge sharing the path",
        events=(
            FaultEvent(at_frac=start, action=SURGE_ON, target="path",
                       params=_params(rate_bps=round(rate_bps, 3),
                                      mean_on=1.2, mean_off=0.6)),
            FaultEvent(at_frac=start + length, action=SURGE_OFF,
                       target="path"),
        ))


def build_server_pause(seed: int) -> FaultScenario:
    """The RealServer stops pacing mid-clip, then resumes."""
    rng = random.Random(seed * 48271 + 71)
    start = rng.uniform(0.30, 0.40)
    length = rng.uniform(0.10, 0.18)
    return FaultScenario(
        name="server-pause",
        description="RealServer pauses all sessions, then resumes",
        events=(
            FaultEvent(at_frac=start, action=SERVER_PAUSE, target="real"),
            FaultEvent(at_frac=start + length, action=SERVER_RESUME,
                       target="real"),
        ))


def build_server_crash(seed: int) -> FaultScenario:
    """The RealServer dies silently; its control plane restarts later
    but the sessions are gone — keepalives and the stall watchdog are
    what end the playback."""
    rng = random.Random(seed * 48271 + 89)
    crash_at = rng.uniform(0.35, 0.45)
    restart = rng.uniform(0.15, 0.25)
    return FaultScenario(
        name="server-crash",
        description="RealServer crash (silent session death) and "
                    "control-plane restart",
        events=(
            FaultEvent(at_frac=crash_at, action=SERVER_CRASH, target="real"),
            FaultEvent(at_frac=crash_at + restart, action=SERVER_RESTART,
                       target="real"),
        ))


SCENARIO_BUILDERS: Dict[str, Callable[[int], FaultScenario]] = {
    "link-flap": build_link_flap,
    "degrade": build_degrade,
    "burst-loss": build_burst_loss,
    "congestion-surge": build_congestion_surge,
    "server-pause": build_server_pause,
    "server-crash": build_server_crash,
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIO_BUILDERS))


def build_scenario(name: str, seed: int) -> FaultScenario:
    """The scenario ``name`` derives from ``seed``.

    Raises:
        ReproError: for an unknown scenario name (the CLI surfaces
            this as a non-zero exit with the list of known names).
    """
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        known = ", ".join(scenario_names())
        raise ReproError(
            f"unknown fault scenario {name!r}; known scenarios: {known}")
    return builder(seed)

"""Methodology tools: ping, tracert, and playlist automation.

The paper's methodology ran ``ping`` and ``tracert`` before and after
every experiment to verify network conditions (Section II.D) and used
the trackers' playlist support to play clips back to back.  These are
their simulated equivalents.
"""

from repro.tools.packet_pair import (
    BandwidthEstimate,
    estimate_bottleneck,
    estimate_from_trace,
)
from repro.tools.ping import PingReport, PingSession, run_ping
from repro.tools.playlist import PlaylistEntry, PlaylistRunner
from repro.tools.stability import StabilityVerdict, verify_stability
from repro.tools.tracert import TracerouteHop, TracerouteReport, run_tracert

__all__ = [
    "BandwidthEstimate",
    "PingReport",
    "PingSession",
    "PlaylistEntry",
    "PlaylistRunner",
    "StabilityVerdict",
    "TracerouteHop",
    "verify_stability",
    "TracerouteReport",
    "estimate_bottleneck",
    "estimate_from_trace",
    "run_ping",
    "run_tracert",
]

"""Simulated ``tracert``.

Discovers the route to a host by sending echo requests with increasing
TTLs, exactly like the Windows tool the paper used to verify that both
players' servers shared a network path (Section II.C) and that routes
stayed stable across runs (Section II.D).  Figure 2's hop-count CDF is
built from these reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ExperimentError
from repro.netsim.addressing import IPAddress
from repro.netsim.icmp import EchoResult
from repro.netsim.node import Host

DEFAULT_MAX_HOPS = 30
DEFAULT_PROBES_PER_HOP = 3
DEFAULT_TIMEOUT = 2.0


@dataclass
class TracerouteHop:
    """One row of tracert output."""

    ttl: int
    responder: Optional[IPAddress]
    rtts: List[float] = field(default_factory=list)

    @property
    def timed_out(self) -> bool:
        return self.responder is None


@dataclass
class TracerouteReport:
    """The discovered route."""

    target: IPAddress
    hops: List[TracerouteHop] = field(default_factory=list)
    reached: bool = False

    @property
    def hop_count(self) -> int:
        """Hops to the target (the paper's Figure 2 metric)."""
        return len(self.hops)

    def addresses(self) -> List[Optional[IPAddress]]:
        return [hop.responder for hop in self.hops]

    def render(self) -> str:
        lines = [f"Tracing route to {self.target} over a maximum of "
                 f"{DEFAULT_MAX_HOPS} hops:"]
        for hop in self.hops:
            if hop.timed_out:
                lines.append(f"  {hop.ttl:2d}  *  *  *  Request timed out.")
                continue
            rtt_text = "  ".join(f"{rtt * 1000:4.0f} ms"
                                 for rtt in hop.rtts)
            lines.append(f"  {hop.ttl:2d}  {rtt_text}  {hop.responder}")
        lines.append("Trace complete." if self.reached
                     else "Target not reached.")
        return "\n".join(lines)


class TracerouteSession:
    """An in-progress traceroute, advanced by the simulator."""

    def __init__(self, host: Host, target: IPAddress,
                 max_hops: int = DEFAULT_MAX_HOPS,
                 probes_per_hop: int = DEFAULT_PROBES_PER_HOP,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        if max_hops <= 0:
            raise ExperimentError("max_hops must be positive")
        self.host = host
        self.target = target
        self.max_hops = max_hops
        self.probes_per_hop = probes_per_hop
        self.timeout = timeout
        self.report = TracerouteReport(target=target)
        self.complete = False
        self._current: Optional[TracerouteHop] = None
        self._probes_answered = 0
        self._sequence = 0

    def start(self) -> "TracerouteSession":
        self._probe_hop(1)
        return self

    def _probe_hop(self, ttl: int) -> None:
        self._current = TracerouteHop(ttl=ttl, responder=None)
        self._probes_answered = 0
        for _ in range(self.probes_per_hop):
            self._sequence += 1
            identifier = self.host.icmp.send_echo(
                self.target, self._on_result, sequence=self._sequence,
                ttl=ttl)
            self.host.sim.schedule_in(self.timeout, self._on_timeout,
                                      identifier, self._sequence)

    def _on_result(self, result: EchoResult) -> None:
        hop = self._current
        if hop is None:
            return
        hop.responder = result.responder
        hop.rtts.append(result.rtt)
        self._register_answer(reached=not result.time_exceeded)

    def _on_timeout(self, identifier: int, sequence: int) -> None:
        if not self.host.icmp.cancel(identifier, sequence):
            return  # already answered
        self._register_answer(reached=False)

    def _register_answer(self, reached: bool) -> None:
        self._probes_answered += 1
        if reached and not self.report.reached:
            self.report.reached = True
        if self._probes_answered < self.probes_per_hop:
            return
        hop = self._current
        self._current = None
        self.report.hops.append(hop)
        if self.report.reached or hop.ttl >= self.max_hops:
            self.complete = True
            return
        self._probe_hop(hop.ttl + 1)


def run_tracert(host: Host, target: IPAddress,
                max_hops: int = DEFAULT_MAX_HOPS,
                probes_per_hop: int = DEFAULT_PROBES_PER_HOP,
                timeout: float = DEFAULT_TIMEOUT) -> TracerouteReport:
    """Run a traceroute to completion (advances the simulation clock)."""
    session = TracerouteSession(host, target, max_hops=max_hops,
                                probes_per_hop=probes_per_hop,
                                timeout=timeout).start()
    # Each hop takes at most `timeout`; run generously past the worst case.
    horizon = host.sim.now + max_hops * (timeout + 0.01) + 1.0
    host.sim.run(until=horizon)
    if not session.complete:
        raise ExperimentError(f"traceroute to {target} did not complete")
    return session.report

"""Playlist automation.

Both trackers "support a customized play list to automatic playback of
multiple video clips" — the mechanism that let the paper's authors
leave experiments running unattended every afternoon.
:class:`PlaylistRunner` replays that workflow: it plays a list of clips
sequentially, constructing a fresh player per entry (each player
instance handles exactly one playback, like one playlist row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Type

from repro.errors import ExperimentError
from repro.netsim.addressing import IPAddress
from repro.netsim.node import Host
from repro.players.base import StreamingClient
from repro.players.stats import PlayerStats


@dataclass(frozen=True)
class PlaylistEntry:
    """One row of a play list."""

    player_class: Type[StreamingClient]
    server: IPAddress
    clip_title: str
    #: Idle seconds between this clip finishing and the next starting.
    gap_seconds: float = 2.0


class PlaylistRunner:
    """Play entries back to back on one client host."""

    def __init__(self, host: Host, entries: List[PlaylistEntry],
                 preroll_seconds: float = 5.0) -> None:
        if not entries:
            raise ExperimentError("playlist is empty")
        self.host = host
        self.entries = list(entries)
        self.preroll_seconds = preroll_seconds
        self.results: List[PlayerStats] = []
        self.players: List[StreamingClient] = []
        self._index = 0
        self._started = False
        self.on_complete: Optional[Callable[[List[PlayerStats]], None]] = None

    def start(self) -> "PlaylistRunner":
        if self._started:
            raise ExperimentError("playlist already started")
        self._started = True
        self._play_next()
        return self

    @property
    def complete(self) -> bool:
        return self._started and self._index >= len(self.entries)

    def _play_next(self) -> None:
        if self._index >= len(self.entries):
            if self.on_complete is not None:
                self.on_complete(self.results)
            return
        entry = self.entries[self._index]
        player = entry.player_class(self.host, entry.server,
                                    preroll_seconds=self.preroll_seconds)
        self.players.append(player)
        player.play(entry.clip_title, on_done=self._on_clip_done)

    def _on_clip_done(self, stats: PlayerStats) -> None:
        self.results.append(stats)
        entry = self.entries[self._index]
        self._index += 1
        self.host.sim.schedule_in(max(0.0, entry.gap_seconds),
                                  self._play_next)

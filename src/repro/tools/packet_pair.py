"""Packet-pair bottleneck-bandwidth estimation.

A classic measurement trick the paper's traces invite: the back-to-back
1514-byte fragments of a Windows Media ADU leave the bottleneck link
spaced by exactly its serialization time, so the gap between
consecutive full-size fragments at the receiver estimates the
bottleneck bandwidth — no active probing required.

    bandwidth ≈ wire_bits(second packet) / gap

:func:`estimate_from_trace` applies this to any capture containing
fragment trains; :func:`estimate_bottleneck` runs an active probe
(pairs of large UDP datagrams) over a live simulated path.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional

from repro.capture.reassembly import group_datagrams
from repro.capture.trace import Trace
from repro.errors import AnalysisError
from repro.netsim.addressing import IPAddress
from repro.netsim.node import Host


@dataclass(frozen=True)
class BandwidthEstimate:
    """Result of a packet-pair estimation."""

    samples: int
    median_bps: float
    mean_bps: float

    @property
    def median_mbps(self) -> float:
        return self.median_bps / 1e6


def _pair_samples(trace: Trace, min_wire_bytes: int) -> List[float]:
    samples: List[float] = []
    for group in group_datagrams(trace):
        records = group.records
        for first, second in zip(records, records[1:]):
            if (first.wire_bytes < min_wire_bytes
                    or second.wire_bytes < min_wire_bytes):
                continue
            gap = second.time - first.time
            if gap <= 0:
                continue
            samples.append(second.wire_bytes * 8.0 / gap)
    return samples


def estimate_from_trace(trace: Trace,
                        min_wire_bytes: int = 1514) -> BandwidthEstimate:
    """Estimate the path bottleneck from fragment trains in a capture.

    Only consecutive same-train packets of at least ``min_wire_bytes``
    count (smaller packets were not necessarily queued back to back).

    Raises:
        AnalysisError: when the trace has no usable pairs.
    """
    samples = _pair_samples(trace, min_wire_bytes)
    if not samples:
        raise AnalysisError(
            "no back-to-back full-size pairs in the trace; packet-pair "
            "needs fragmented (or otherwise bursty) traffic")
    return BandwidthEstimate(samples=len(samples),
                             median_bps=statistics.median(samples),
                             mean_bps=statistics.fmean(samples))


def estimate_bottleneck(sender: Host, receiver: Host,
                        receiver_port: int = 9876, pairs: int = 10,
                        probe_bytes: int = 1472,
                        spacing: float = 0.050) -> BandwidthEstimate:
    """Actively probe a live path with back-to-back datagram pairs.

    Sends ``pairs`` pairs of maximum-size unfragmented datagrams and
    measures receiver-side dispersion.  Advances the simulation clock.

    Raises:
        AnalysisError: if fewer than two probes arrive.
    """
    arrivals: List[float] = []
    socket = receiver.udp.bind(receiver_port)
    socket.on_receive = lambda datagram: arrivals.append(
        datagram.arrival_time)
    probe = sender.udp.bind_ephemeral()
    sim = sender.sim
    for index in range(pairs):
        when = sim.now + index * spacing
        sim.schedule_at(when, probe.send, receiver.address,
                        receiver_port, probe_bytes)
        sim.schedule_at(when, probe.send, receiver.address,
                        receiver_port, probe_bytes)
    sim.run(until=sim.now + pairs * spacing + 5.0)
    socket.close()
    if len(arrivals) < 2:
        raise AnalysisError("probe packets did not arrive")
    wire_bits = (probe_bytes + 28 + 14) * 8.0
    samples = []
    for index in range(0, len(arrivals) - 1, 2):
        gap = arrivals[index + 1] - arrivals[index]
        if gap > 0:
            samples.append(wire_bits / gap)
    if not samples:
        raise AnalysisError("all probe pairs coalesced; no dispersion")
    return BandwidthEstimate(samples=len(samples),
                             median_bps=statistics.median(samples),
                             mean_bps=statistics.fmean(samples))

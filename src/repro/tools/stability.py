"""Path-stability verification.

Section II.D: "Before and after each run, ping and tracert were run to
verify that the network status had not dramatically changed, say from a
route change, during the run."  This module does the comparing: given
the before/after reports, decide whether the run's measurements are
trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.tools.ping import PingReport
from repro.tools.tracert import TracerouteReport

#: An RTT shift beyond this factor flags "dramatic change".
RTT_SHIFT_FACTOR = 2.0


@dataclass(frozen=True)
class StabilityVerdict:
    """The before/after comparison."""

    route_changed: bool
    rtt_shifted: bool
    rtt_before: float
    rtt_after: float
    hop_count: int

    @property
    def stable(self) -> bool:
        return not (self.route_changed or self.rtt_shifted)

    def describe(self) -> str:
        if self.stable:
            return (f"path stable: {self.hop_count} hops, RTT "
                    f"{self.rtt_before * 1000:.0f} -> "
                    f"{self.rtt_after * 1000:.0f} ms")
        reasons: List[str] = []
        if self.route_changed:
            reasons.append("route changed")
        if self.rtt_shifted:
            reasons.append(
                f"RTT shifted {self.rtt_before * 1000:.0f} -> "
                f"{self.rtt_after * 1000:.0f} ms")
        return "path UNSTABLE: " + ", ".join(reasons)


def verify_stability(ping_before: PingReport, ping_after: PingReport,
                     tracert_before: TracerouteReport,
                     tracert_after: TracerouteReport) -> StabilityVerdict:
    """Compare the bracketing measurements of one run."""
    route_changed = (tracert_before.addresses()
                     != tracert_after.addresses())
    before = ping_before.median_rtt
    after = ping_after.median_rtt
    rtt_shifted = False
    if before == before and after == after and before > 0:  # NaN guards
        ratio = max(after, before) / min(after, before)
        rtt_shifted = ratio > RTT_SHIFT_FACTOR
    return StabilityVerdict(route_changed=route_changed,
                            rtt_shifted=rtt_shifted,
                            rtt_before=before, rtt_after=after,
                            hop_count=tracert_before.hop_count)

"""Simulated ``ping``.

Sends a series of ICMP echo requests and summarizes round-trip times
and loss, like the Windows 2000 ping the paper ran before and after
each experiment.  Figure 1's RTT CDF is built from these reports.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ExperimentError
from repro.netsim.addressing import IPAddress
from repro.netsim.icmp import EchoResult
from repro.netsim.node import Host

#: Windows ping defaults: 4 echoes, 1 s apart, ~4 s timeout (we use a
#: tighter one; simulated paths answer in well under a second).
DEFAULT_COUNT = 4
DEFAULT_INTERVAL = 1.0
DEFAULT_TIMEOUT = 2.0


@dataclass
class PingReport:
    """Summary of one ping run."""

    target: IPAddress
    sent: int
    received: int
    rtts: List[float] = field(default_factory=list)

    @property
    def loss_percent(self) -> float:
        if self.sent == 0:
            return 0.0
        return 100.0 * (self.sent - self.received) / self.sent

    @property
    def min_rtt(self) -> float:
        return min(self.rtts) if self.rtts else float("nan")

    @property
    def max_rtt(self) -> float:
        return max(self.rtts) if self.rtts else float("nan")

    @property
    def avg_rtt(self) -> float:
        return statistics.fmean(self.rtts) if self.rtts else float("nan")

    @property
    def median_rtt(self) -> float:
        return statistics.median(self.rtts) if self.rtts else float("nan")

    def render(self) -> str:
        """A human-readable summary in the classic ping style."""
        lines = [f"Ping statistics for {self.target}:",
                 f"    Packets: Sent = {self.sent}, "
                 f"Received = {self.received}, "
                 f"Lost = {self.sent - self.received} "
                 f"({self.loss_percent:.0f}% loss)"]
        if self.rtts:
            lines.append(
                "Approximate round trip times in milli-seconds:")
            lines.append(
                f"    Minimum = {self.min_rtt * 1000:.0f}ms, "
                f"Maximum = {self.max_rtt * 1000:.0f}ms, "
                f"Average = {self.avg_rtt * 1000:.0f}ms")
        return "\n".join(lines)


class PingSession:
    """An in-progress ping; completes as echoes return or time out."""

    def __init__(self, host: Host, target: IPAddress,
                 count: int = DEFAULT_COUNT,
                 interval: float = DEFAULT_INTERVAL,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        if count <= 0:
            raise ExperimentError("ping count must be positive")
        self.host = host
        self.target = target
        self.count = count
        self.interval = interval
        self.timeout = timeout
        self.report = PingReport(target=target, sent=0, received=0)
        self._outstanding = 0
        self._launched = False

    def start(self) -> "PingSession":
        if self._launched:
            raise ExperimentError("ping session already started")
        self._launched = True
        for index in range(self.count):
            self.host.sim.schedule_in(index * self.interval,
                                      self._send_probe, index + 1)
        return self

    def _send_probe(self, sequence: int) -> None:
        self.report.sent += 1
        self._outstanding += 1
        identifier = self.host.icmp.send_echo(self.target, self._on_reply,
                                              sequence=sequence)
        self.host.sim.schedule_in(self.timeout, self._on_timeout,
                                  identifier, sequence)

    def _on_reply(self, result: EchoResult) -> None:
        self._outstanding -= 1
        if result.time_exceeded:
            return  # counted as lost (target unreachable at this TTL)
        self.report.received += 1
        self.report.rtts.append(result.rtt)

    def _on_timeout(self, identifier: int, sequence: int) -> None:
        if self.host.icmp.cancel(identifier, sequence):
            self._outstanding -= 1

    @property
    def complete(self) -> bool:
        return (self._launched and self.report.sent == self.count
                and self._outstanding == 0)


def run_ping(host: Host, target: IPAddress, count: int = DEFAULT_COUNT,
             interval: float = DEFAULT_INTERVAL,
             timeout: float = DEFAULT_TIMEOUT) -> PingReport:
    """Run a ping to completion (advances the simulation clock).

    Convenience wrapper: schedules the probes, runs the simulator far
    enough for every echo to return or time out, and returns the report.
    """
    session = PingSession(host, target, count=count, interval=interval,
                          timeout=timeout).start()
    horizon = host.sim.now + (count - 1) * interval + timeout + 0.001
    host.sim.run(until=horizon)
    return session.report

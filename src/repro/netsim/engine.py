"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap design: callbacks are scheduled at
absolute simulated times and executed in time order.  Two events at the
same timestamp run in scheduling order (a monotonic sequence number
breaks ties), which makes every simulation fully deterministic for a
given seed — a property the test suite relies on heavily.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.netsim.rng import RandomStreams


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so the heap pops them in
    deterministic order.  The callback and its arguments do not take
    part in comparisons.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing when its time comes."""
        self.cancelled = True


class Simulator:
    """Event loop with a simulated clock and seeded randomness.

    Args:
        seed: master seed for all random streams drawn from this
            simulator (see :class:`repro.netsim.rng.RandomStreams`).

    Attributes:
        now: current simulated time in seconds.
        streams: named, independently-seeded random streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self._heap: List[Event] = []
        self._sequence = 0
        self._running = False
        self._event_count = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}s; clock is at {self.now:.6f}s")
        event = Event(time=time, sequence=self._sequence, callback=callback,
                      args=args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"delay must be nonnegative, got {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains or limits are hit.

        Args:
            until: stop once the clock would pass this time.  The clock
                is advanced to ``until`` on return so follow-up
                scheduling is relative to it.
            max_events: stop after this many events (safety valve for
                runaway simulations).

        Returns:
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        self._event_count += executed
        return executed

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns:
            True if an event ran, False if the heap was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
            self._event_count += 1
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def executed_events(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._event_count

"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap design: callbacks are scheduled at
absolute simulated times and executed in time order.  Two events at the
same timestamp run in scheduling order (a monotonic sequence number
breaks ties), which makes every simulation fully deterministic for a
given seed — a property the test suite relies on heavily.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.netsim.rng import RandomStreams

# Module-level bindings: the event loop calls these millions of times
# per study, and a global load is measurably cheaper than re-resolving
# the ``heapq`` attribute on every schedule/pop.
_heappush = heapq.heappush
_heappop = heapq.heappop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.core import Telemetry
    from repro.validate.checker import RunValidator


class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so the heap pops them in
    deterministic order.  The callback and its arguments do not take
    part in comparisons.  A slotted plain class rather than a
    dataclass: the event loop constructs and compares these millions
    of times per study.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled",
                 "consumed", "owner")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[..., None], args: tuple = (),
                 owner: Optional["Simulator"] = None) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Set once the event has been popped (fired or discarded); a
        #: cancel after that must not disturb the pending counter.
        self.consumed = False
        #: Owning simulator, for live pending-event accounting.
        self.owner = owner

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Event(time={self.time!r}, sequence={self.sequence!r}, "
                f"cancelled={self.cancelled!r})")

    def cancel(self) -> None:
        """Prevent the event from firing when its time comes."""
        if self.cancelled or self.consumed:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._pending -= 1


class Simulator:
    """Event loop with a simulated clock and seeded randomness.

    Args:
        seed: master seed for all random streams drawn from this
            simulator (see :class:`repro.netsim.rng.RandomStreams`).
        telemetry: optional :class:`~repro.telemetry.core.Telemetry`
            facade.  When given, its clock is bound to this simulator
            and instrumented layers (links, IP, pacers, buffers) will
            find it via ``sim.telemetry``; its profiler, if any,
            samples every :meth:`run`.
        validate: optional :class:`~repro.validate.checker.RunValidator`.
            When given, instrumented layers self-register via
            ``sim.validator`` at construction so the validator can
            sweep their conservation laws at run end.  Attaching a
            validator schedules no events and perturbs nothing.
        fast_path: optional
            :class:`~repro.netsim.flowlevel.FlowLevelConfig`.  When
            given, a :class:`~repro.netsim.flowlevel.FlowLevelDirector`
            delivers eligible packet trains analytically instead of
            event-per-packet (see :mod:`repro.netsim.flowlevel`); with
            ``None`` (the default) every packet takes the event path
            and the run is byte-identical to a pre-fast-path build.

    Attributes:
        now: current simulated time in seconds.
        streams: named, independently-seeded random streams.
        telemetry: the attached facade, or None (the default — every
            instrumented path is a no-op then).
        validator: the attached validator, or None (the default).
        fast_path: the flow-level director, or None (the default).
    """

    def __init__(self, seed: int = 0,
                 telemetry: Optional["Telemetry"] = None,
                 validate: Optional["RunValidator"] = None,
                 fast_path: Optional[object] = None) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self._heap: List[Event] = []
        self._sequence = 0
        self._running = False
        self._event_count = 0
        self._pending = 0
        #: Bumped by every link mutator (up/down, bandwidth, delay,
        #: loss); the flow-level director revalidates its cached
        #: per-path static profiles when this changes.
        self.topology_epoch = 0
        self.telemetry = telemetry
        self.validator = validate
        if telemetry is not None:
            telemetry.bind(self)
        if validate is not None:
            validate.bind(self)
        self.fast_path = None
        if fast_path is not None:
            # Local import: flowlevel imports link/packet, which lead
            # back here for type checking only.
            from repro.netsim.flowlevel import FlowLevelDirector

            self.fast_path = FlowLevelDirector(self, fast_path)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}s; clock is at {self.now:.6f}s")
        event = Event(time=time, sequence=self._sequence, callback=callback,
                      args=args, owner=self)
        self._sequence += 1
        _heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule_in(self, delay: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"delay must be nonnegative, got {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the heap drains or limits are hit.

        Args:
            until: stop once the clock would pass this time.  The clock
                is advanced to ``until`` on return so follow-up
                scheduling is relative to it.
            max_events: stop after this many events (safety valve for
                runaway simulations).

        Returns:
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        # The profiler decision is made once per run() call; the
        # unprofiled loop below is the pre-telemetry one with the heap,
        # the pop, and the loop bounds held in locals — the loop body
        # is the hottest code in a study sweep, and each saved
        # attribute load is paid millions of times.
        profiler = (self.telemetry.profiler
                    if self.telemetry is not None else None)
        heap = self._heap
        pop = _heappop
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                event = heap[0]
                if event.cancelled:
                    pop(heap).consumed = True
                    continue
                if until is not None and event.time > until:
                    break
                pop(heap)
                event.consumed = True
                self._pending -= 1
                self.now = event.time
                if profiler is not None:
                    profiler.run_event(event.callback, event.args,
                                       len(heap))
                else:
                    event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        self._event_count += executed
        return executed

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns:
            True if an event ran, False if the heap was empty.
        """
        while self._heap:
            event = _heappop(self._heap)
            if event.cancelled:
                event.consumed = True
                continue
            event.consumed = True
            self._pending -= 1
            self.now = event.time
            event.callback(*event.args)
            self._event_count += 1
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events.

        Maintained as a live counter (push/pop/cancel each adjust it),
        so reading it is O(1) rather than a scan of the heap.
        """
        return self._pending

    @property
    def executed_events(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._event_count

"""IPv4 addresses and subnets for the simulated network.

The paper's methodology cares about addresses in two places: clip
selection required both players' servers to live on the *same subnet*
(Section II.C), and tracert output identifies routers hop by hop.  This
module provides just enough IPv4 semantics for both: parseable
dotted-quad addresses, prefix-based subnets with membership tests, and
an allocator that hands out host addresses inside a subnet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import AddressError


@dataclass(frozen=True, order=True)
class IPAddress:
    """An IPv4 address stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"IPv4 value out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse a dotted-quad string like ``"130.215.28.181"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError as exc:
                raise AddressError(f"bad octet {part!r} in {text!r}") from exc
            if not 0 <= octet <= 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF)
                        for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPAddress('{self}')"


@dataclass(frozen=True)
class Subnet:
    """An IPv4 subnet in CIDR form (network address + prefix length)."""

    network: IPAddress
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise AddressError(f"bad prefix length {self.prefix_len}")
        if self.network.value & ~self._mask():
            raise AddressError(
                f"{self.network} has host bits set for /{self.prefix_len}")

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        """Parse CIDR notation like ``"130.215.0.0/16"``."""
        try:
            addr_text, prefix_text = text.strip().split("/")
        except ValueError as exc:
            raise AddressError(f"not CIDR notation: {text!r}") from exc
        try:
            prefix_len = int(prefix_text)
        except ValueError as exc:
            raise AddressError(f"bad prefix in {text!r}") from exc
        return cls(IPAddress.parse(addr_text), prefix_len)

    def _mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    def __contains__(self, address: IPAddress) -> bool:
        return (address.value & self._mask()) == self.network.value

    def hosts(self) -> Iterator[IPAddress]:
        """Yield usable host addresses (network and broadcast excluded
        for prefixes shorter than /31)."""
        size = 1 << (32 - self.prefix_len)
        if self.prefix_len >= 31:
            first, last = 0, size - 1
        else:
            first, last = 1, size - 2
        for offset in range(first, last + 1):
            yield IPAddress(self.network.value + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"


class AddressAllocator:
    """Hands out sequential host addresses from a subnet.

    Raises:
        AddressError: when the subnet is exhausted.
    """

    def __init__(self, subnet: Subnet) -> None:
        self.subnet = subnet
        self._hosts = subnet.hosts()

    def allocate(self) -> IPAddress:
        try:
            return next(self._hosts)
        except StopIteration as exc:
            raise AddressError(f"subnet {self.subnet} exhausted") from exc

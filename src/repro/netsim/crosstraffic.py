"""Background cross-traffic: on/off Pareto burst sources.

The paper's measurements rode on a live Internet path shared with web
traffic; the reproduction's default stands in for that with light
Gaussian link jitter. For studies that need *principled* contention —
e.g. checking that the turbulence classifier survives realistic
queueing noise — this module provides the classic self-similar traffic
construction: an on/off source with Pareto-distributed burst and idle
periods, emitting MTU-sized packets at a configured rate while "on".
Aggregating several such sources yields long-range-dependent traffic
(Willinger et al.), the accepted model of 1990s/2000s web cross
traffic.
"""

from __future__ import annotations

import random
from typing import Optional

from repro import units
from repro.errors import SimulationError
from repro.netsim.addressing import IPAddress
from repro.netsim.engine import Simulator
from repro.netsim.headers import PayloadMeta
from repro.netsim.node import Host


def pareto(rng: random.Random, shape: float, minimum: float) -> float:
    """A Pareto draw with the given shape and minimum (scale)."""
    return minimum / (rng.random() ** (1.0 / shape))


class OnOffParetoSource:
    """One on/off cross-traffic source between two hosts.

    Args:
        sender/receiver: endpoint hosts (the receiver needs no socket;
            unclaimed UDP datagrams are dropped silently, like real
            background noise aimed elsewhere).
        rate_bps: sending rate during "on" periods.
        mean_on / mean_off: mean burst and idle durations in seconds.
        shape: Pareto tail index; 1 < shape <= 2 gives the heavy tails
            that produce self-similar aggregates (default 1.5).
        packet_bytes: UDP payload per packet (default fills the MTU).
        port: destination port for the noise datagrams.
    """

    def __init__(self, sim: Simulator, sender: Host, receiver: Host,
                 rate_bps: float = units.mbps(1),
                 mean_on: float = 1.0, mean_off: float = 2.0,
                 shape: float = 1.5,
                 packet_bytes: int = units.MAX_UNFRAGMENTED_UDP_PAYLOAD,
                 port: int = 9,
                 rng: Optional[random.Random] = None) -> None:
        if rate_bps <= 0:
            raise SimulationError("cross-traffic rate must be positive")
        if mean_on <= 0 or mean_off <= 0:
            raise SimulationError("on/off means must be positive")
        if not 1.0 < shape <= 2.0:
            raise SimulationError("Pareto shape must be in (1, 2]")
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.rate_bps = rate_bps
        self.shape = shape
        # Pareto mean = shape*min/(shape-1); invert for the minimums.
        self._on_min = mean_on * (shape - 1.0) / shape
        self._off_min = mean_off * (shape - 1.0) / shape
        self.packet_bytes = packet_bytes
        self.port = port
        self._rng = rng or random.Random(0)
        self._socket = sender.udp.bind_ephemeral()
        self._gap = packet_bytes * 8.0 / rate_bps
        self._running = False
        self._on_until = 0.0
        self._started_at = 0.0
        self.packets_sent = 0

    def start(self) -> "OnOffParetoSource":
        """Begin the on/off cycle (idempotent)."""
        if self._running:
            return self
        self._running = True
        self._started_at = self.sim.now
        if self.sim.fast_path is not None:
            # Cross traffic makes queueing state unpredictable: black
            # out the fast path for the source's whole lifetime (idle
            # gaps included — a burst may begin inside any of them).
            self.sim.fast_path.add_blackout(self._started_at, float("inf"))
        self.sim.schedule_in(0.0, self._begin_burst)
        return self

    def stop(self) -> None:
        self._running = False
        if self.sim.fast_path is not None:
            self.sim.fast_path.close_blackout(self._started_at, self.sim.now)

    # ------------------------------------------------------------------
    def _begin_burst(self) -> None:
        if not self._running:
            return
        duration = pareto(self._rng, self.shape, self._on_min)
        self._on_until = self.sim.now + duration
        self._emit()

    def _emit(self) -> None:
        if not self._running:
            return
        if self.sim.now >= self._on_until:
            idle = pareto(self._rng, self.shape, self._off_min)
            self.sim.schedule_in(idle, self._begin_burst)
            return
        self._socket.send(self.receiver.address, self.port,
                          self.packet_bytes,
                          payload=PayloadMeta(kind="cross-traffic"))
        self.packets_sent += 1
        self.sim.schedule_in(self._gap, self._emit)

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of time on (mean_on/(mean_on+mean_off))."""
        on_mean = self._on_min * self.shape / (self.shape - 1.0)
        off_mean = self._off_min * self.shape / (self.shape - 1.0)
        return on_mean / (on_mean + off_mean)

"""The packet object that moves through the simulated network.

A :class:`Packet` is one IP packet (possibly a fragment) together with
its transport header (present only on the first fragment, as on the
wire) and application payload metadata.  Sizes are tracked exactly so
that serialization delay, queue occupancy, and the capture traces all
agree with what Ethereal would have shown: a full-size fragment is a
1514-byte wire frame.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro import units
from repro.errors import PacketError
from repro.netsim.headers import (
    IPv4Header,
    IcmpHeader,
    IpProtocol,
    PayloadMeta,
    TcpHeader,
    UdpHeader,
)

_packet_ids = itertools.count(1)

TransportHeader = Union[UdpHeader, TcpHeader, IcmpHeader]


@dataclass
class Packet:
    """One IP packet in flight.

    Attributes:
        ip: the IPv4 header (sizes, fragmentation fields, TTL).
        transport: UDP/TCP/ICMP header; ``None`` on trailing fragments,
            which carry only raw IP payload, exactly as on the wire.
        payload: application metadata describing the carried bytes.
        uid: globally unique packet id (diagnostics and capture joins).
        datagram_id: id shared by all fragments of one IP datagram.
        span: provenance span context set by the sender's IP layer when
            a :class:`~repro.telemetry.spans.SpanRecorder` is installed;
            ``None`` otherwise (and on all non-traced traffic).
    """

    ip: IPv4Header
    transport: Optional[TransportHeader] = None
    payload: PayloadMeta = field(default_factory=PayloadMeta)
    uid: int = field(default_factory=lambda: next(_packet_ids))
    datagram_id: int = 0
    span: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.ip.total_length < self.ip.header_bytes:
            raise PacketError(
                f"IP total_length {self.ip.total_length} smaller than header")
        if self.ip.is_trailing_fragment and self.transport is not None:
            raise PacketError("trailing fragments must not carry a "
                              "transport header")

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def ip_bytes(self) -> int:
        """Size of the IP packet (header + payload)."""
        return self.ip.total_length

    @property
    def wire_bytes(self) -> int:
        """Size on an Ethernet wire, as a sniffer reports it."""
        return units.wire_frame_bytes(self.ip.total_length)

    @property
    def is_fragment(self) -> bool:
        return self.ip.is_fragment

    @property
    def is_trailing_fragment(self) -> bool:
        return self.ip.is_trailing_fragment

    @property
    def protocol(self) -> IpProtocol:
        return self.ip.protocol

    def forwarded(self) -> "Packet":
        """A copy with TTL decremented, as a router would emit.

        Raises:
            PacketError: if the TTL is already zero.
        """
        if self.ip.ttl <= 0:
            raise PacketError("cannot forward a packet with TTL 0")
        return Packet(ip=self.ip.decremented(), transport=self.transport,
                      payload=self.payload, datagram_id=self.datagram_id,
                      span=self.span)

    def __repr__(self) -> str:
        frag = ""
        if self.is_fragment:
            frag = (f" frag(off={self.ip.fragment_offset * 8}"
                    f"{'+' if self.ip.more_fragments else '$'})")
        return (f"<Packet #{self.uid} {self.ip.src}->{self.ip.dst} "
                f"{self.protocol.name} {self.ip_bytes}B{frag}>")

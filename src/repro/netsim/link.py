"""Full-duplex point-to-point links with serialization and queueing.

Each direction of a link owns a drop-tail queue and a transmitter that
serializes one packet at a time at the link bandwidth, then delivers it
after the propagation delay (plus optional per-packet jitter).  This is
what turns a burst of IP fragments handed down in the same instant into
the closely-spaced wire "groups" of the paper's Figure 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro import units
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.telemetry.events import (
    LINK_DOWN,
    LINK_UP,
    PACKET_DELIVERED,
    PACKET_ENQUEUED,
    PACKET_LOSS,
)
from repro.telemetry.spans import STATUS_LOST

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.engine import Simulator
    from repro.netsim.node import Node


class LossModel:
    """Independent (Bernoulli) packet loss.

    The paper measured ~0% loss, so the default probability is zero;
    the congestion-study extension raises it.

    By default TCP segments are spared (``spare_tcp=True``): the
    simulator's minimal TCP carries only tiny control exchanges and has
    no retransmission, so sparing it stands in for the retransmissions
    a real TCP would perform — the media flows under study are UDP and
    take the full loss.  Set ``spare_tcp=False`` to drop blindly.
    """

    def __init__(self, probability: float = 0.0,
                 rng: Optional[random.Random] = None,
                 spare_tcp: bool = True) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability out of range: {probability}")
        self.probability = probability
        self.spare_tcp = spare_tcp
        self._rng = rng or random.Random(0)
        self.losses = 0

    def should_drop(self, packet: Optional[Packet] = None) -> bool:
        if self.probability <= 0.0:
            return False
        if (self.spare_tcp and packet is not None
                and packet.protocol.name == "TCP"):
            return False
        if self._rng.random() < self.probability:
            self.losses += 1
            return True
        return False


class GilbertElliottLossModel(LossModel):
    """Two-state (good/bad) burst-loss model.

    The classic Gilbert–Elliott chain: each packet first advances the
    state (good→bad with ``p_good_bad``, bad→good with ``p_bad_good``),
    then drops with the state's loss probability.  The stationary bad
    fraction is ``p_gb / (p_gb + p_bg)``; mean burst length is
    ``1 / p_bad_good`` packets.  Fault scenarios swap one of these onto
    a link mid-run to model the bursty loss episodes that steady
    Bernoulli loss cannot (see :mod:`repro.faults`).
    """

    def __init__(self, p_good_bad: float = 0.05, p_bad_good: float = 0.4,
                 loss_good: float = 0.0, loss_bad: float = 0.5,
                 rng: Optional[random.Random] = None,
                 spare_tcp: bool = True) -> None:
        super().__init__(0.0, rng=rng, spare_tcp=spare_tcp)
        for name, value in (("p_good_bad", p_good_bad),
                            ("p_bad_good", p_bad_good),
                            ("loss_good", loss_good),
                            ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def should_drop(self, packet: Optional[Packet] = None) -> bool:
        rng = self._rng
        if self.bad:
            if rng.random() < self.p_bad_good:
                self.bad = False
        elif rng.random() < self.p_good_bad:
            self.bad = True
        if (self.spare_tcp and packet is not None
                and packet.protocol.name == "TCP"):
            return False
        probability = self.loss_bad if self.bad else self.loss_good
        if probability > 0.0 and rng.random() < probability:
            self.losses += 1
            return True
        return False


@dataclass
class DirectionStats:
    """Per-direction packet/byte counters."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    bytes_delivered: int = 0


class _Direction:
    """One direction of a link: queue + busy transmitter + delivery."""

    def __init__(self, sim: "Simulator", sink: "Node",
                 bandwidth_bps: float, propagation_delay: float,
                 queue: DropTailQueue, loss: LossModel,
                 jitter: Callable[[], float], label: str = "") -> None:
        self._sim = sim
        self._sink = sink
        self._bandwidth_bps = bandwidth_bps
        self._propagation_delay = propagation_delay
        self._queue = queue
        self._loss = loss
        self._jitter = jitter
        self._busy = False
        self._up = True
        self._last_delivery = 0.0
        #: Packets polled off the queue but not yet handed to the sink
        #: (serializing or propagating).  The validator's conservation
        #: law counts these; a plain int, maintained unconditionally.
        self._in_flight = 0
        #: When the in-service packet leaves the serializer (its
        #: _finish_transmit time); meaningful only while _busy.  The
        #: flow-level fast path chains its departure recursion through
        #: this, so a busy transmitter alone never forces a fallback.
        self._busy_until = 0.0
        #: Flow-level fast-path state (repro.netsim.flowlevel): virtual
        #: transmitter occupancy and last virtual entry time.  Both
        #: stay at their zeros unless a director commits a train here,
        #: so the check in send() costs one float compare on a
        #: fast-path-free run.
        self._reserved_until = 0.0
        self._fp_last_entry = 0.0
        self.stats = DirectionStats()
        # Telemetry handles are resolved once, here: the facade is
        # attached at Simulator construction, before any topology
        # exists, so caching is safe and keeps the per-packet cost to
        # one None check when disabled.
        self._telemetry = sim.telemetry
        self._spans = (self._telemetry.spans
                       if self._telemetry is not None else None)
        self._label = label
        if self._telemetry is not None:
            queue.bind_telemetry(self._telemetry, link=label)
            registry = self._telemetry.registry
            self._ctr_sent = registry.counter("link.packets_sent", link=label)
            self._ctr_delivered = registry.counter("link.packets_delivered",
                                                   link=label)
            self._ctr_lost = registry.counter("link.packets_lost", link=label)
            self._ctr_bytes = registry.counter("link.bytes_delivered",
                                               link=label)

    def send(self, packet: Packet) -> None:
        self.stats.packets_sent += 1
        telemetry = self._telemetry
        if telemetry is not None:
            self._ctr_sent.inc()
        if not self._up:
            self._drop_down(packet)
            return
        if self._loss.should_drop(packet):
            self.stats.packets_lost += 1
            if self._spans is not None and packet.span is not None:
                self._spans.packet_dropped(packet, self._sim.now,
                                           STATUS_LOST, self._label)
            if telemetry is not None:
                self._ctr_lost.inc()
                telemetry.emit(PACKET_LOSS, link=self._label,
                               packet_bytes=packet.ip_bytes)
            return
        if not self._queue.offer(packet):
            self.stats.packets_lost += 1
            if telemetry is not None:
                self._ctr_lost.inc()
            return
        if telemetry is not None:
            telemetry.emit(PACKET_ENQUEUED, link=self._label,
                           packet_bytes=packet.ip_bytes,
                           queue_bytes=self._queue.bytes_queued)
        if not self._busy:
            self._transmit_next()

    def _end_reservation(self) -> None:
        """Resume real transmission after a virtual train's occupancy."""
        self._busy = False
        self._transmit_next()

    def _drop_down(self, packet: Packet) -> None:
        """Account for a packet lost to an administratively-down link."""
        self.stats.packets_lost += 1
        if self._spans is not None and packet.span is not None:
            self._spans.packet_dropped(packet, self._sim.now,
                                       STATUS_LOST, self._label)
        if self._telemetry is not None:
            self._ctr_lost.inc()
            self._telemetry.emit(PACKET_LOSS, link=self._label,
                                 packet_bytes=packet.ip_bytes,
                                 reason="link_down")

    def set_up(self, up: bool) -> None:
        """Bring this direction up or down.

        Going down flushes the queue (those packets are lost, like
        frames sitting in an interface buffer when the carrier drops);
        the serializer finishes any packet already on the wire.  Coming
        up restarts the transmitter.
        """
        if up == self._up:
            return
        self._up = up
        self._sim.topology_epoch += 1
        if not up:
            while True:
                packet = self._queue.poll()
                if packet is None:
                    break
                self._drop_down(packet)
            return
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if not self._up:
            self._busy = False
            return
        if self._reserved_until > self._sim.now:
            # A flow-level train virtually occupies the transmitter
            # until _reserved_until; a real packet racing past it would
            # reorder the wire.  Hold the queue until the occupancy
            # ends.  (One float compare, always false without a
            # director — _reserved_until never leaves 0.0 then.)
            if len(self._queue):
                # A real packet is now waiting out a virtual train —
                # the packet-level schedule might have interleaved it
                # mid-train, so this run is no longer provably exact.
                # The director surfaces the count; the equivalence
                # harness demands byte-identity only when it is zero.
                director = self._sim.fast_path
                if director is not None:
                    director.reals_parked += 1
            self._busy = True
            self._busy_until = self._reserved_until
            self._sim.schedule_at(self._reserved_until,
                                  self._end_reservation)
            return
        packet = self._queue.poll()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._in_flight += 1
        if self._spans is not None and packet.span is not None:
            self._spans.tx_started(packet, self._sim.now, self._label)
        tx_delay = units.transmission_delay(packet.wire_bytes,
                                            self._bandwidth_bps)
        self._busy_until = self._sim.now + tx_delay
        self._sim.schedule_in(tx_delay, self._finish_transmit, packet)

    def _finish_transmit(self, packet: Packet) -> None:
        arrival = (self._sim.now + self._propagation_delay
                   + max(0.0, self._jitter()))
        # A wire is FIFO: jitter models variable queueing delay, which
        # can stretch gaps but never reorder packets within a direction.
        arrival = max(arrival, self._last_delivery)
        self._last_delivery = arrival
        if self._spans is not None and packet.span is not None:
            self._spans.tx_finished(packet, self._sim.now)
            self._spans.propagated(packet, self._sim.now, arrival,
                                   self._label)
        self._sim.schedule_at(arrival, self._deliver, packet)
        self._transmit_next()

    def _deliver(self, packet: Packet) -> None:
        self._in_flight -= 1
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.ip_bytes
        if self._telemetry is not None:
            self._ctr_delivered.inc()
            self._ctr_bytes.inc(packet.ip_bytes)
            self._telemetry.emit(PACKET_DELIVERED, link=self._label,
                                 packet_bytes=packet.ip_bytes)
        self._sink.receive(packet)


class Link:
    """A full-duplex link between two nodes.

    Args:
        sim: owning simulator.
        a, b: endpoint nodes; the link registers itself with both.
        bandwidth_bps: serialization rate, bits/second, per direction.
        propagation_delay: one-way latency in seconds.
        queue_capacity_bytes: drop-tail queue size per direction.
        loss: optional shared loss model (defaults to lossless).
        jitter: optional zero-arg callable returning extra per-packet
            delay in seconds (e.g. drawn from an RNG stream); negative
            values are clamped to zero.
    """

    def __init__(self, sim: "Simulator", a: "Node", b: "Node",
                 bandwidth_bps: float = units.mbps(10),
                 propagation_delay: float = 0.001,
                 queue_capacity_bytes: int = 256 * 1024,
                 loss: Optional[LossModel] = None,
                 jitter: Optional[Callable[[], float]] = None,
                 queue_factory: Optional[Callable[[], DropTailQueue]] = None,
                 ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay must be nonnegative")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        loss = loss or LossModel(0.0)
        jitter = jitter or (lambda: 0.0)
        if queue_factory is None:
            queue_factory = lambda: DropTailQueue(queue_capacity_bytes)  # noqa: E731
        self._forward = _Direction(sim, b, bandwidth_bps, propagation_delay,
                                   queue_factory(), loss, jitter,
                                   label=f"{a.name}->{b.name}")
        self._reverse = _Direction(sim, a, bandwidth_bps, propagation_delay,
                                   queue_factory(), loss, jitter,
                                   label=f"{b.name}->{a.name}")
        a.attach(self, b)
        b.attach(self, a)
        if sim.validator is not None:
            sim.validator.register_link(self)

    # ------------------------------------------------------------------
    # Fault injection (repro.faults drives these mid-run)
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        """Whether the link is administratively up (both directions)."""
        return self._forward._up and self._reverse._up

    def set_up(self, up: bool) -> None:
        """Take the whole link down or bring it back up.

        Both directions change together (a cut cable, a bounced
        interface).  Going down flushes the queues and drops everything
        sent until the link comes back; packets already serialized onto
        the wire still arrive, as on a real cut.  Emits ``link_down`` /
        ``link_up`` trace events when telemetry is attached.
        """
        if up == self.up:
            return
        self._forward.set_up(up)
        self._reverse.set_up(up)
        if self.sim.telemetry is not None:
            self.sim.telemetry.emit(LINK_UP if up else LINK_DOWN,
                                    link=self.label)
        for node in (self.a, self.b):
            on_change = getattr(node, "on_link_state", None)
            if on_change is not None:
                on_change(self, up)

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Degrade (or restore) the serialization rate mid-run.

        Applies to packets whose transmission starts after the call;
        the packet currently on the wire finishes at the old rate.
        """
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self._forward._bandwidth_bps = bandwidth_bps
        self._reverse._bandwidth_bps = bandwidth_bps
        self.sim.topology_epoch += 1

    def set_propagation_delay(self, delay: float) -> None:
        """Change the one-way latency mid-run (path degradation)."""
        if delay < 0:
            raise ValueError("propagation delay must be nonnegative")
        self.propagation_delay = delay
        self._forward._propagation_delay = delay
        self._reverse._propagation_delay = delay
        self.sim.topology_epoch += 1

    def set_loss(self, loss: LossModel) -> None:
        """Swap the loss model (e.g. toggle Gilbert–Elliott bursts)."""
        self._forward._loss = loss
        self._reverse._loss = loss
        self.sim.topology_epoch += 1

    @property
    def label(self) -> str:
        return f"{self.a.name}<->{self.b.name}"

    def queue_stats(self, sender: "Node"):
        """The queue counters for the direction whose transmitter is
        ``sender`` (drops here are congestion losses)."""
        if sender is self.a:
            return self._forward._queue.stats
        if sender is self.b:
            return self._reverse._queue.stats
        raise ValueError(f"{sender!r} is not an endpoint of this link")

    def send_from(self, sender: "Node", packet: Packet) -> None:
        """Transmit a packet from one endpoint toward the other."""
        if sender is self.a:
            self._forward.send(packet)
        elif sender is self.b:
            self._reverse.send(packet)
        else:
            raise ValueError(f"{sender!r} is not an endpoint of this link")

    def direction_stats(self, sender: "Node") -> DirectionStats:
        """Counters for the direction whose transmitter is ``sender``."""
        if sender is self.a:
            return self._forward.stats
        if sender is self.b:
            return self._reverse.stats
        raise ValueError(f"{sender!r} is not an endpoint of this link")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Link {self.a.name}<->{self.b.name} "
                f"{self.bandwidth_bps / 1e6:.1f}Mbps "
                f"{self.propagation_delay * 1000:.2f}ms>")

"""Protocol header models.

Packets in the simulator carry structured header objects rather than
raw bytes; byte counts are computed from them (so queueing and
serialization delays are realistic), and the pcap writer serializes
them into genuine wire-format bytes when a capture is exported.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Optional

from repro import units
from repro.netsim.addressing import IPAddress


class IpProtocol(IntEnum):
    """IANA protocol numbers used by the simulator."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(frozen=True)
class IPv4Header:
    """The fields of an IPv4 header the study's analysis depends on.

    ``identification``, ``more_fragments`` and ``fragment_offset`` drive
    the fragmentation analysis (Figures 4 and 5); ``ttl`` drives
    tracert; ``total_length`` determines wire size.
    """

    src: IPAddress
    dst: IPAddress
    protocol: IpProtocol
    total_length: int
    identification: int = 0
    ttl: int = 128
    more_fragments: bool = False
    fragment_offset: int = 0  # in 8-byte units, as on the wire

    @property
    def header_bytes(self) -> int:
        return units.IPV4_HEADER_BYTES

    @property
    def payload_bytes(self) -> int:
        return self.total_length - self.header_bytes

    @property
    def is_fragment(self) -> bool:
        """True for any packet that is part of a fragmented datagram."""
        return self.more_fragments or self.fragment_offset > 0

    @property
    def is_trailing_fragment(self) -> bool:
        """True for second-and-later fragments (offset > 0).

        Ethereal displays the first fragment of a fragmented UDP
        datagram as the "UDP packet" of the group and the rest as "IP
        fragments"; the paper's Figure 4/5 terminology follows that, so
        analysis code counts trailing fragments.
        """
        return self.fragment_offset > 0

    def decremented(self) -> "IPv4Header":
        """A copy with TTL reduced by one (router forwarding)."""
        return replace(self, ttl=self.ttl - 1)


@dataclass(frozen=True)
class UdpHeader:
    """UDP header: ports plus the datagram length field."""

    src_port: int
    dst_port: int
    length: int  # header + payload bytes, as on the wire

    @property
    def header_bytes(self) -> int:
        return units.UDP_HEADER_BYTES

    @property
    def payload_bytes(self) -> int:
        return self.length - self.header_bytes


@dataclass(frozen=True)
class TcpHeader:
    """A minimal TCP header (no options modeled)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    syn: bool = False
    fin: bool = False
    ack_flag: bool = False

    @property
    def header_bytes(self) -> int:
        return units.TCP_HEADER_BYTES


@dataclass(frozen=True)
class IcmpHeader:
    """ICMP header for echo and TTL-exceeded messages."""

    icmp_type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0

    @property
    def header_bytes(self) -> int:
        return units.ICMP_HEADER_BYTES


@dataclass
class PayloadMeta:
    """Application-meaning attached to a packet's payload.

    The simulator does not move real media bytes around; instead each
    datagram carries this metadata so players and analyzers can relate
    network packets back to application data units (media frames,
    control messages, echo probes).
    """

    kind: str = "data"
    adu_sequence: Optional[int] = None
    frame_numbers: tuple = field(default_factory=tuple)
    media_time: Optional[float] = None
    message: Optional[object] = None
    #: Root provenance span of the ADU this payload belongs to, set by
    #: the pacer when span tracing is on; rides the metadata through
    #: fragmentation and reassembly to the receiving player.
    span: Optional[object] = None
    #: Simulated send time, stamped only when congestion control is
    #: armed (``Pacer.enable_cc_stamping``); the receiver turns it into
    #: delay/jitter samples for its receiver reports.
    sent_at: Optional[float] = None
    #: FEC group index, set only on ``fec-parity`` datagrams when the
    #: repair stack is armed (repro.repair).
    fec_group: Optional[int] = None
    #: Member descriptors (the FEC/RTX header): which sequences a
    #: parity datagram protects, or the original descriptor riding a
    #: retransmission.  Empty on all non-repair traffic.
    fec_members: tuple = field(default_factory=tuple)
    #: Original ADU sequence a ``media-rtx`` datagram re-carries.
    retransmit_of: Optional[int] = None

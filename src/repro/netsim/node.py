"""Nodes: the common base, forwarding routers, and end hosts.

A :class:`Node` owns its attachments to links and a routing table.
:class:`Router` forwards packets, decrementing TTL and answering with
ICMP time-exceeded when it hits zero — which is exactly what makes the
simulated ``tracert`` (Figure 2) work.  :class:`Host` terminates
packets: its IP layer reassembles fragments and dispatches datagrams to
the UDP/ICMP/TCP layers.

Every node supports *taps*: callbacks observing each packet the node
sends or receives, with the current simulated time.  The capture
sniffer (the Ethereal stand-in) is implemented as a tap on the client
host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import RoutingError
from repro.netsim.addressing import IPAddress
from repro.netsim.packet import Packet
from repro.netsim.routing import RoutingTable
from repro.telemetry.events import NO_ROUTE_DROP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.engine import Simulator
    from repro.netsim.link import Link

TapCallback = Callable[[str, Packet, float], None]


class Node:
    """Base class: link attachments, routing, and packet taps."""

    def __init__(self, sim: "Simulator", name: str,
                 address: Optional[IPAddress] = None) -> None:
        self.sim = sim
        self.name = name
        self.address = address
        self.links: List["Link"] = []
        self.neighbors: Dict["Node", "Link"] = {}
        self.routing = RoutingTable()
        self.taps: List[TapCallback] = []
        #: When True, a routing miss drops the packet (counted, and
        #: emitted as a ``no_route_drop`` trace event) instead of
        #: raising.  The fault layer sets this: during re-convergence a
        #: node legitimately has no path, and a mid-run RoutingError
        #: would abort the whole simulation from inside the event loop.
        self.drop_on_no_route = False
        self.no_route_drops = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, link: "Link", peer: "Node") -> None:
        """Record a link attachment (called by Link's constructor)."""
        self.links.append(link)
        self.neighbors[peer] = link

    def add_tap(self, callback: TapCallback) -> None:
        """Observe every packet this node sends ('tx') or receives ('rx')."""
        self.taps.append(callback)

    def _notify_taps(self, direction: str, packet: Packet) -> None:
        for tap in self.taps:
            tap(direction, packet, self.sim.now)

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------
    def send_packet(self, packet: Packet) -> None:
        """Route a locally-originated packet out toward its destination."""
        try:
            next_hop = self.routing.lookup(packet.ip.dst)
        except RoutingError:
            if not self.drop_on_no_route:
                raise
            self._drop_no_route(packet)
            return
        link = self.neighbors.get(next_hop)
        if link is None:
            if self.drop_on_no_route:
                self._drop_no_route(packet)
                return
            raise RoutingError(
                f"{self.name}: next hop {next_hop.name} is not a neighbor")
        self._notify_taps("tx", packet)
        link.send_from(self, packet)

    def _drop_no_route(self, packet: Packet) -> None:
        self.no_route_drops += 1
        if self.sim.telemetry is not None:
            self.sim.telemetry.emit(NO_ROUTE_DROP, node=self.name,
                                    dst=str(packet.ip.dst),
                                    packet_bytes=packet.ip_bytes)

    def receive(self, packet: Packet) -> None:
        """Entry point for packets delivered by a link."""
        self._notify_taps("rx", packet)
        self.handle_packet(packet)

    def handle_packet(self, packet: Packet) -> None:
        """Subclass hook: what to do with a delivered packet."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} {self.address}>"


class Router(Node):
    """Store-and-forward router with TTL handling.

    When a packet's TTL expires, the router emits an ICMP time-exceeded
    message back to the source (used by tracert).  Routers never
    reassemble fragments — fragments are forwarded independently, as on
    the real Internet.
    """

    def __init__(self, sim: "Simulator", name: str,
                 address: Optional[IPAddress] = None) -> None:
        super().__init__(sim, name, address)
        self.forwarded = 0
        self.ttl_expired = 0

    def handle_packet(self, packet: Packet) -> None:
        if self.address is not None and packet.ip.dst == self.address:
            # Routers terminate only ICMP aimed at themselves (ping of a
            # hop); everything else addressed to a router is dropped.
            self._handle_local(packet)
            return
        if packet.ip.ttl <= 1:
            self.ttl_expired += 1
            self._send_time_exceeded(packet)
            return
        self.forwarded += 1
        self.send_packet(packet.forwarded())

    def _handle_local(self, packet: Packet) -> None:
        from repro.netsim import icmp  # local import: avoids a cycle

        if packet.protocol.name == "ICMP":
            icmp.answer_echo(self, packet)

    def _send_time_exceeded(self, packet: Packet) -> None:
        from repro.netsim import icmp  # local import: avoids a cycle

        if self.address is None:
            return
        icmp.send_time_exceeded(self, packet)


class Host(Node):
    """An end host with a full protocol stack.

    The stack objects are created lazily-on-construction here and
    imported locally to keep the module import graph acyclic:

    * ``host.ip``   — fragmentation/reassembly (:class:`repro.netsim.ip.IpLayer`)
    * ``host.udp``  — socket table (:class:`repro.netsim.udp.UdpLayer`)
    * ``host.icmp`` — echo client/server (:class:`repro.netsim.icmp.IcmpLayer`)
    * ``host.tcp``  — minimal reliable channels (:class:`repro.netsim.tcp.TcpLayer`)
    """

    def __init__(self, sim: "Simulator", name: str,
                 address: IPAddress, mtu: Optional[int] = None) -> None:
        super().__init__(sim, name, address)
        from repro.netsim.icmp import IcmpLayer
        from repro.netsim.ip import IpLayer
        from repro.netsim.tcp import TcpLayer
        from repro.netsim.udp import UdpLayer

        self.ip = IpLayer(self, mtu=mtu)
        self.udp = UdpLayer(self)
        self.icmp = IcmpLayer(self)
        self.tcp = TcpLayer(self)

    def handle_packet(self, packet: Packet) -> None:
        if packet.ip.dst != self.address:
            # Hosts do not forward; a misrouted packet is silently
            # dropped (counted by the IP layer for diagnostics).
            self.ip.misrouted += 1
            return
        self.ip.receive(packet)

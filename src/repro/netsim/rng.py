"""Named, independently-seeded random streams.

A simulation draws randomness for several unrelated purposes (packet
size jitter, link jitter, loss decisions, network-condition sampling).
Giving each purpose its own :class:`random.Random` stream, seeded
deterministically from a master seed and the stream's name, keeps
results reproducible even when one subsystem changes how many draws it
makes — a standard technique in simulation practice.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A family of named pseudo-random streams under one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(master_seed, name)``,
        so the same name always yields the same sequence for a given
        master seed, independent of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per experiment run."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RandomStreams(master_seed={self.master_seed}, "
                f"streams={sorted(self._streams)})")

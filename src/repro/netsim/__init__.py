"""Discrete-event network simulation substrate.

This package implements the network the paper measured over: multi-hop
IP paths between a streaming server and a client, with real link
serialization, propagation delay, queueing, IP fragmentation and
reassembly, UDP and ICMP, and a minimal reliable TCP channel for
control traffic.

Typical use::

    from repro.netsim import Simulator, build_path_topology

    sim = Simulator(seed=7)
    topo = build_path_topology(sim, hop_count=17, rtt=0.040)
    sock = topo.server.udp.bind(5005)
    ...
    sim.run(until=120.0)
"""

from repro.netsim.addressing import IPAddress, Subnet
from repro.netsim.engine import Event, Simulator
from repro.netsim.headers import (
    IPv4Header,
    IcmpHeader,
    TcpHeader,
    UdpHeader,
)
from repro.netsim.icmp import IcmpType
from repro.netsim.ip import IpLayer, ReassemblyBuffer
from repro.netsim.link import Link, LossModel
from repro.netsim.node import Host, Node, Router
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.rng import RandomStreams
from repro.netsim.topology import PathTopology, build_path_topology
from repro.netsim.udp import UdpDatagram, UdpSocket

__all__ = [
    "DropTailQueue",
    "Event",
    "Host",
    "IPAddress",
    "IcmpHeader",
    "IcmpType",
    "IpLayer",
    "IPv4Header",
    "Link",
    "LossModel",
    "Node",
    "Packet",
    "PathTopology",
    "RandomStreams",
    "ReassemblyBuffer",
    "Router",
    "Simulator",
    "Subnet",
    "TcpHeader",
    "UdpDatagram",
    "UdpHeader",
    "UdpSocket",
    "build_path_topology",
]

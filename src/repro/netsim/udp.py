"""UDP sockets over the simulated IP layer.

Both players were forced to stream over UDP in the paper's experiments
(Section II.D), so this is the transport every media byte in the
reproduction travels on.  Sockets are callback-based: the owner binds a
port and receives :class:`UdpDatagram` objects as they are delivered
(after any IP reassembly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro import units
from repro.errors import SocketError
from repro.netsim.addressing import IPAddress
from repro.netsim.headers import IpProtocol, PayloadMeta, UdpHeader
from repro.netsim.ip import Datagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Host


@dataclass
class UdpDatagram:
    """A received UDP datagram, as handed to the application.

    ``fragment_count`` and the two timestamps are metadata a real
    application would not see; the instrumented players use them the
    way MediaTracker correlated application receipts with Ethereal's
    network-level view (Figure 12).
    """

    src: IPAddress
    src_port: int
    dst_port: int
    payload_bytes: int
    payload: PayloadMeta
    fragment_count: int
    first_packet_time: float
    arrival_time: float


ReceiveCallback = Callable[[UdpDatagram], None]


class UdpSocket:
    """One bound UDP port on a host."""

    def __init__(self, layer: "UdpLayer", port: int) -> None:
        self._layer = layer
        self.port = port
        self.on_receive: Optional[ReceiveCallback] = None
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.bytes_received = 0

    def send(self, dst: IPAddress, dst_port: int, payload_bytes: int,
             payload: Optional[PayloadMeta] = None, ttl: int = 128) -> None:
        """Send ``payload_bytes`` of application data to ``dst:dst_port``.

        Datagrams larger than the path MTU are fragmented by the IP
        layer — the caller does not (and cannot) prevent that, exactly
        like a real sendto() of an oversized buffer.
        """
        if payload_bytes < 0:
            raise SocketError("payload size must be nonnegative")
        header = UdpHeader(src_port=self.port, dst_port=dst_port,
                           length=units.UDP_HEADER_BYTES + payload_bytes)
        self._layer.host.ip.send(
            dst, IpProtocol.UDP, header, units.UDP_HEADER_BYTES,
            payload_bytes, payload=payload, ttl=ttl)
        self.datagrams_sent += 1

    def close(self) -> None:
        """Release the port binding."""
        self._layer.release(self.port)

    def _deliver(self, datagram: UdpDatagram) -> None:
        self.datagrams_received += 1
        self.bytes_received += datagram.payload_bytes
        if self.on_receive is not None:
            self.on_receive(datagram)


class UdpLayer:
    """The per-host socket table, dispatching on destination port."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._sockets: Dict[int, UdpSocket] = {}
        self._next_ephemeral = 49152
        host.ip.register_handler(IpProtocol.UDP, self._on_datagram)

    def bind(self, port: int) -> UdpSocket:
        """Bind a socket to a specific port.

        Raises:
            SocketError: if the port is invalid or already bound.
        """
        if not 0 < port <= 65535:
            raise SocketError(f"invalid port {port}")
        if port in self._sockets:
            raise SocketError(f"port {port} already bound on {self.host.name}")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def bind_ephemeral(self) -> UdpSocket:
        """Bind to the next free ephemeral port (49152+)."""
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                raise SocketError("ephemeral port space exhausted")
        socket = self.bind(self._next_ephemeral)
        self._next_ephemeral += 1
        return socket

    def release(self, port: int) -> None:
        self._sockets.pop(port, None)

    def _on_datagram(self, datagram: Datagram) -> None:
        header = datagram.transport
        if not isinstance(header, UdpHeader):
            return
        socket = self._sockets.get(header.dst_port)
        if socket is None:
            return  # port unreachable; a real stack would send ICMP
        socket._deliver(UdpDatagram(
            src=datagram.src, src_port=header.src_port,
            dst_port=header.dst_port,
            payload_bytes=datagram.transport_payload_bytes,
            payload=datagram.payload,
            fragment_count=datagram.fragment_count,
            first_packet_time=datagram.first_packet_time,
            arrival_time=datagram.last_packet_time))

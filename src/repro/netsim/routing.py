"""Static routing tables with longest-prefix match.

The experiments run over fixed paths (the paper verified with tracert
that routes did not change during a run), so routing is static: each
node holds a table mapping subnets to next-hop neighbors, with an
optional default route.  Longest-prefix match keeps multi-subnet
topologies (server farm + campus network) unambiguous.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import RoutingError
from repro.netsim.addressing import IPAddress, Subnet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node


class RoutingTable:
    """Longest-prefix-match table from subnets to next-hop nodes."""

    def __init__(self) -> None:
        self._entries: List[Tuple[Subnet, "Node"]] = []
        self._default: Optional["Node"] = None

    def add_route(self, subnet: Subnet, next_hop: "Node") -> None:
        """Route traffic for ``subnet`` via ``next_hop``."""
        self._entries.append((subnet, next_hop))
        # Keep longest prefixes first so lookup can return the first hit.
        self._entries.sort(key=lambda entry: entry[0].prefix_len, reverse=True)

    def set_default(self, next_hop: "Node") -> None:
        """Fallback next hop when no subnet matches."""
        self._default = next_hop

    def lookup(self, destination: IPAddress) -> "Node":
        """Next hop for ``destination``.

        Raises:
            RoutingError: when nothing matches and no default is set.
        """
        for subnet, next_hop in self._entries:
            if destination in subnet:
                return next_hop
        if self._default is not None:
            return self._default
        raise RoutingError(f"no route to {destination}")

    def __len__(self) -> int:
        return len(self._entries) + (1 if self._default else 0)

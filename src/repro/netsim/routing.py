"""Static routing tables with longest-prefix match.

The experiments run over fixed paths (the paper verified with tracert
that routes did not change during a run), so routing is static: each
node holds a table mapping subnets to next-hop neighbors, with an
optional default route.  Longest-prefix match keeps multi-subnet
topologies (server farm + campus network) unambiguous.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import RoutingError
from repro.netsim.addressing import IPAddress, Subnet
from repro.telemetry.events import ROUTE_RECONVERGED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node


class RoutingTable:
    """Longest-prefix-match table from subnets to next-hop nodes."""

    def __init__(self) -> None:
        self._entries: List[Tuple[Subnet, "Node"]] = []
        self._default: Optional["Node"] = None

    def add_route(self, subnet: Subnet, next_hop: "Node") -> None:
        """Route traffic for ``subnet`` via ``next_hop``."""
        self._entries.append((subnet, next_hop))
        # Keep longest prefixes first so lookup can return the first hit.
        self._entries.sort(key=lambda entry: entry[0].prefix_len, reverse=True)

    def set_default(self, next_hop: "Node") -> None:
        """Fallback next hop when no subnet matches."""
        self._default = next_hop

    def lookup(self, destination: IPAddress) -> "Node":
        """Next hop for ``destination``.

        Raises:
            RoutingError: when nothing matches and no default is set.
        """
        for subnet, next_hop in self._entries:
            if destination in subnet:
                return next_hop
        if self._default is not None:
            return self._default
        raise RoutingError(f"no route to {destination}")

    def replace(self, entries: List[Tuple[Subnet, "Node"]],
                default: Optional["Node"] = None) -> None:
        """Swap the whole table in one step (route re-convergence).

        Used by :class:`RouteManager` after a topology change: the old
        table — including its default route — is discarded, so a
        destination with no surviving path genuinely has *no route*
        rather than a stale default pointing into a black hole.
        """
        self._entries = sorted(entries,
                               key=lambda entry: entry[0].prefix_len,
                               reverse=True)
        self._default = default

    def __len__(self) -> int:
        return len(self._entries) + (1 if self._default else 0)


class RouteManager:
    """Failure-aware re-convergence over a static topology.

    Static tables are correct for the paper's steady-state runs (tracert
    confirmed stable paths), but the fault layer takes links down
    mid-run.  The manager models a routing protocol at a very coarse
    grain: a link state change starts a convergence timer, and when it
    fires every managed node's table is rebuilt by breadth-first search
    over the links that are currently up — host (/32) routes to every
    addressed node.  Until the timer fires, traffic follows the stale
    tables (and is dropped by the down link); after it fires, unreachable
    destinations are dropped at the source with a ``no_route_drop``
    event instead of raising ``RoutingError`` out of the event loop.

    The manager does nothing — and the original hand-written tables are
    untouched — until :meth:`attach` is called and a link actually
    changes state, keeping the no-fault hot path byte-identical.

    Args:
        sim: owning simulator (for the convergence timer and telemetry).
        nodes: every node whose table the manager owns after the first
            re-convergence; iteration order fixes tie-breaking, so pass
            a deterministically-ordered sequence.
        convergence_delay: seconds between a link event and the rebuilt
            tables taking effect.
    """

    def __init__(self, sim, nodes, convergence_delay: float = 0.5) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.convergence_delay = convergence_delay
        self.reconvergences = 0
        self._pending = 0

    def attach(self) -> None:
        """Subscribe to link state changes and arm no-route dropping."""
        for node in self.nodes:
            node.drop_on_no_route = True
            node.on_link_state = self._on_link_state

    # Link.set_up notifies both endpoints, so one flap produces two
    # calls (plus more if several links change in the same window); the
    # pending counter coalesces them into a single rebuild when the
    # last timer fires.
    def _on_link_state(self, link, up: bool) -> None:
        self._pending += 1
        self.sim.schedule_in(self.convergence_delay, self._reconverge)

    def _reconverge(self) -> None:
        self._pending -= 1
        if self._pending > 0:
            return
        self.rebuild()
        self.reconvergences += 1
        if self.sim.telemetry is not None:
            self.sim.telemetry.emit(ROUTE_RECONVERGED,
                                    tables=len(self.nodes))

    def rebuild(self) -> None:
        """Recompute every managed node's table from live links."""
        for node in self.nodes:
            first_hop = self._first_hops(node)
            entries = [(Subnet(target.address, 32), hop)
                       for target, hop in first_hop.items()
                       if target.address is not None]
            node.routing.replace(entries)

    @staticmethod
    def _first_hops(source: "Node"):
        """BFS over up links: reachable node -> first hop from source.

        Neighbor dicts preserve attachment order, so ties (equal-length
        paths) resolve identically on every run and in every process.
        """
        first_hop = {}
        visited = {source}
        queue = []
        for peer, link in source.neighbors.items():
            if link.up and peer not in visited:
                visited.add(peer)
                first_hop[peer] = peer
                queue.append(peer)
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for peer, link in node.neighbors.items():
                if link.up and peer not in visited:
                    visited.add(peer)
                    first_hop[peer] = first_hop[node]
                    queue.append(peer)
        return first_hop

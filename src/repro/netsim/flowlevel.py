"""Flow-level fast path: analytic delivery of whole packet trains.

The event engine spends almost all of a clean study's time moving media
packets hop by hop: every packet costs two heap events per direction
(serialize, deliver) across ~17 hops, even though on an idle FIFO path
the whole schedule is closed-form.  This module computes that schedule
directly.  When a datagram's packet train leaves the sender's IP layer,
the :class:`FlowLevelDirector` walks the routed path once and — if
every direction is analytically tractable — computes each packet's
departure and arrival times with the exact store-and-forward recursion
the event path would have produced::

    dep[i]     = max(entry[i], dep[i-1]) + tx(wire_bytes[i], bandwidth)
    arrival[i] = (dep[i] + propagation) + max(0, jitter())
    arrival[i] = max(arrival[i], last_delivery)        # wires are FIFO

then schedules **one** event per packet, at its client arrival time.
The float operations match :meth:`~repro.netsim.link._Direction`'s
event path term for term, so with zero jitter the analytic schedule is
bit-identical to packet-level simulation; with Gaussian jitter the
per-train draw order matches the wire order, so a lone train is still
exact and only cross-train RNG interleaving differs.

**Validity conditions** (checked per train, per direction, at send
time): the direction is up and idle (no queued or in-flight real
packets), plain Bernoulli loss with probability zero, a plain drop-tail
queue, UDP data traffic with enough TTL, and no overlap with a
registered *blackout window* (fault schedules, cross-traffic sources,
and congestion-control activation register those).  Anything else
refuses the train and the sender's IP layer falls through to the
packet-level path — per-interval fallback, not a mode switch.

**Reservations** keep concurrently-streaming flows honest: a committed
train leaves each direction's virtual occupancy (``_reserved_until``),
last entry time, and delivery clamp behind.  A later train may chain
onto a reservation only if its first entry does not interleave with
the reservation's last entry (then FIFO order is provably preserved at
every downstream hop); a real packet-level packet arriving during a
virtual occupancy waits it out, so mixed traffic never reorders.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.errors import SimulationError
from repro.netsim.headers import IpProtocol
from repro.netsim.link import LossModel, _Direction
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.engine import Simulator
    from repro.netsim.ip import IpLayer
    from repro.netsim.node import Host, Node

#: Fallback-reason labels (stable names; tests and reports key on them).
REASON_PROTOCOL = "protocol"
REASON_CROSS_TRAFFIC = "cross-traffic"
REASON_NO_ROUTE = "no-route"
REASON_TTL = "ttl"
REASON_LINK_DOWN = "link-down"
REASON_TAPPED = "tapped-router"
REASON_LOSSY = "lossy-link"
REASON_CONTENTION = "contention"
REASON_INTERLEAVE = "interleave"
REASON_BLACKOUT = "blackout"


@dataclass(frozen=True)
class FlowLevelConfig:
    """Opt-in knobs for the fast path (pure data, picklable).

    Attributes:
        guard_seconds: extra padding applied to both ends of every
            blackout window; 0.0 trusts the registered windows exactly.
        strict: when True, refuse any train that would cross a
            direction with real packets serializing or queued, keeping
            every accepted train *provably exact* (bit-identical to
            packet-level at zero jitter).  The default (False) chains
            the departure recursion through the known serializer
            backlog instead — still FIFO-consistent, but a real packet
            crossing a slower downstream hop ahead of the train can
            shift deliveries by transmission-time-scale amounts, so
            results agree with packet-level within tolerances rather
            than exactly.  Strict mode falls back far more often on
            busy topologies (every fallback packet re-dirties ~2×hops
            directions for its whole flight).
    """

    guard_seconds: float = 0.0
    strict: bool = False

    def fingerprint(self) -> str:
        """Stable key material for the study cache."""
        return (f"flowlevel-v1:guard={self.guard_seconds!r}"
                f":strict={int(self.strict)}")


@dataclass(frozen=True)
class FastPathSummary:
    """Per-run fast-path outcome, attached to study results."""

    trains_fast: int = 0
    packets_fast: int = 0
    trains_fallback: int = 0
    packets_fallback: int = 0
    events_saved: int = 0
    #: Times a real (fallback) packet was held behind a committed
    #: train reservation; zero means every accepted train was provably
    #: exact (at zero jitter) — the equivalence harness keys on this.
    reals_parked: int = 0
    fallback_reasons: Tuple[Tuple[str, int], ...] = ()


def train_schedule(entries: Sequence[float], wires: Sequence[int],
                   bandwidth_bps: float, propagation: float,
                   prev_dep: float, last_delivery: float,
                   jitters: Sequence[float],
                   ) -> Tuple[List[float], float, float]:
    """One direction's store-and-forward schedule for one train.

    Replicates the event path's float operations exactly (see module
    docstring); shared by the director and the ``fastpath-equivalence``
    refold so the two can never drift apart.

    Returns:
        ``(arrivals, dep_last, last_delivery)``.
    """
    dep = prev_dep
    arrivals: List[float] = []
    append = arrivals.append
    for entry, wire, jitter in zip(entries, wires, jitters):
        start = entry if entry > dep else dep
        # Inlined units.transmission_delay (same float operations).
        dep = start + wire * 8.0 / bandwidth_bps
        # Conditionals instead of max(): same results, and this loop
        # runs once per packet per direction — it is the fast path's
        # inner kernel.
        arrival = dep + propagation + (jitter if jitter > 0.0 else 0.0)
        if arrival < last_delivery:
            arrival = last_delivery
        last_delivery = arrival
        append(arrival)
    return arrivals, dep, last_delivery


@dataclass(frozen=True)
class _DirectionFold:
    """Ledger record of one direction's inputs to :func:`train_schedule`."""

    label: str
    bandwidth_bps: float
    propagation: float
    prev_dep: float
    last_delivery: float
    jitters: Tuple[float, ...]


@dataclass(frozen=True)
class TrainRecord:
    """One accepted train's full analytic derivation (ledger entry)."""

    sent_at: float
    wires: Tuple[int, ...]
    directions: Tuple[_DirectionFold, ...]
    arrivals: Tuple[float, ...]

    def refold(self) -> Tuple[float, ...]:
        """Recompute the final arrivals from the recorded inputs."""
        entries: Sequence[float] = [self.sent_at] * len(self.wires)
        arrivals: List[float] = list(entries)
        for fold in self.directions:
            arrivals, _, _ = train_schedule(
                entries, self.wires, fold.bandwidth_bps, fold.propagation,
                fold.prev_dep, fold.last_delivery, fold.jitters)
            entries = arrivals
        return tuple(arrivals)


class FlowLevelDirector:
    """Per-simulation fast-path state machine.

    Created by ``Simulator(fast_path=FlowLevelConfig())``; the sender's
    IP layer offers every outgoing train via :meth:`try_deliver` and
    falls through to packet-level emission when it returns False.
    """

    def __init__(self, sim: "Simulator", config: FlowLevelConfig) -> None:
        if (sim.telemetry is not None
                and getattr(sim.telemetry, "spans", None) is not None):
            raise SimulationError(
                "the flow-level fast path emits no per-hop span events; "
                "run with span tracing off or fast_path=None")
        self.sim = sim
        self.config = config
        self.enabled = True
        #: Closed blackout intervals [(start, end)]; ``end`` may be inf.
        self._blackouts: List[Tuple[float, float]] = []
        self._path_cache: Dict[Tuple[int, object], Optional[tuple]] = {}
        self._path_cache_enabled = True
        self._record_ledger = sim.validator is not None
        self.ledger: List[TrainRecord] = []
        self.trains_fast = 0
        self.packets_fast = 0
        self.trains_fallback = 0
        self.packets_fallback = 0
        self.events_saved = 0
        self.reals_parked = 0
        self.fallback_reasons: Dict[str, int] = {}
        if sim.validator is not None:
            sim.validator.register_fastpath(self)

    # ------------------------------------------------------------------
    # Blackout windows (faults, cross traffic, cc activation)
    # ------------------------------------------------------------------
    def add_blackout(self, start: float, end: float) -> None:
        """Refuse any train whose flight overlaps ``[start, end]``.

        Registered up front by the fault controller (which knows its
        whole schedule at arm time) and dynamically by cross-traffic
        sources and congestion-control activation; ``end`` may be
        ``float('inf')`` for an open window.
        """
        guard = self.config.guard_seconds
        self._blackouts.append((start - guard, end + guard))
        # Route re-convergence under faults can change next hops for
        # good; cached paths are only trusted on fault-free runs.
        self._path_cache_enabled = False
        self._path_cache.clear()

    def close_blackout(self, start: float, end: float) -> None:
        """Close a previously-open window registered as ``(start, inf)``."""
        guard = self.config.guard_seconds
        try:
            index = self._blackouts.index((start - guard, float("inf")))
        except ValueError:
            return
        self._blackouts[index] = (start - guard, end + guard)

    def _blacked_out(self, start: float, end: float) -> bool:
        for w_start, w_end in self._blackouts:
            if start <= w_end and w_start <= end:
                return True
        return False

    # ------------------------------------------------------------------
    # Routing walk
    # ------------------------------------------------------------------
    def _resolve_path(self, host: "Host", dst) -> Optional["_PathEntry"]:
        """Cached :class:`_PathEntry` for host->dst, or None."""
        if self._path_cache_enabled:
            key = (id(host), dst)
            cached = self._path_cache.get(key, _MISS)
            if cached is not _MISS:
                return cached
        path = self._walk_path(host, dst)
        entry = None if path is None else _PathEntry(*path)
        if self._path_cache_enabled:
            self._path_cache[(id(host), dst)] = entry
        return entry

    def _build_profile(self, directions: Tuple[_Direction, ...],
                       ) -> Tuple[Optional[list], Optional[str]]:
        """Validate per-direction statics; ``(profile, refusal_reason)``.

        The profile snapshots everything that can only change through a
        link mutator (each of which bumps ``sim.topology_epoch``):
        administrative state, loss model, queue object, bandwidth,
        propagation, jitter callable, queue capacity.  The dynamic loop
        in :meth:`try_deliver` then touches only per-train state.
        """
        profile = []
        for direction in directions:
            if not direction._up:
                return None, REASON_LINK_DOWN
            loss = direction._loss
            if type(loss) is not LossModel or loss.probability > 0.0:
                return None, REASON_LOSSY
            queue = direction._queue
            if type(queue) is not DropTailQueue:
                return None, REASON_CONTENTION
            profile.append((direction, direction._bandwidth_bps,
                            direction._propagation_delay,
                            direction._jitter, queue, queue._queue,
                            queue.capacity_bytes))
        return profile, None

    def _walk_path(self, host: "Host", dst) -> Optional[tuple]:
        from repro.netsim.node import Host as HostNode
        from repro.errors import RoutingError

        node: "Node" = host
        directions: List[_Direction] = []
        routers: List["Node"] = []
        for _ in range(64):
            try:
                next_hop = node.routing.lookup(dst)
            except RoutingError:
                return None
            link = node.neighbors.get(next_hop)
            if link is None:
                return None
            directions.append(link._forward if node is link.a
                              else link._reverse)
            node = next_hop
            if node.address == dst:
                if isinstance(node, HostNode):
                    return tuple(directions), tuple(routers), node
                return None  # router-terminated; leave to packet-level
            if isinstance(node, HostNode):
                return None  # misroute; packet-level drops it
            routers.append(node)
        return None

    # ------------------------------------------------------------------
    # The fast path
    # ------------------------------------------------------------------
    def try_deliver(self, ip: "IpLayer", packets: List[Packet]) -> bool:
        """Deliver a train analytically; False means fall back.

        On acceptance all sender/hop/link bookkeeping the packet-level
        path would perform synchronously is applied here, and one
        delivery event per packet is scheduled at its computed client
        arrival; the caller must then *not* emit the packets.
        """
        if not self.enabled:
            return False
        first = packets[0]
        if first.ip.protocol is not IpProtocol.UDP:
            return self._refuse(packets, REASON_PROTOCOL)
        if first.payload.kind == "cross-traffic":
            return self._refuse(packets, REASON_CROSS_TRAFFIC)
        host = ip.host
        entry_cache = self._resolve_path(host, first.ip.dst)
        if entry_cache is None:
            return self._refuse(packets, REASON_NO_ROUTE)
        sim = self.sim
        epoch = sim.topology_epoch
        if entry_cache.epoch != epoch:
            profile, reason = self._build_profile(entry_cache.directions)
            entry_cache.profile = profile
            entry_cache.reason = reason
            entry_cache.epoch = epoch
        if entry_cache.profile is None:
            return self._refuse(packets, entry_cache.reason)
        directions = entry_cache.directions
        routers = entry_cache.routers
        if first.ip.ttl <= len(routers):
            return self._refuse(packets, REASON_TTL)
        for router in routers:
            if router.taps:
                # A sniffer on a transit router expects per-forward tx
                # taps with true timestamps; only the event path has
                # those.
                return self._refuse(packets, REASON_TAPPED)
        now = sim.now
        count = len(packets)
        strict = self.config.strict
        train_bytes = sum(packet.ip_bytes for packet in packets)
        wires = tuple(packet.wire_bytes for packet in packets)
        entries: Sequence[float] = [now] * count
        # One pass per direction: dynamic eligibility (statics were
        # settled by the profile above), then the speculative analytic
        # schedule.  Direction state mutates only in the commit phase
        # below, so a refusal here perturbs nothing but the jitter
        # streams already drawn (deterministically).
        record = self._record_ledger
        folds: List[_DirectionFold] = []
        #: Per direction: (first entry, dep of last packet, last arrival).
        commits: List[Tuple[float, float, float]] = []
        for (direction, bandwidth, propagation, jitter, queue, backlog,
             capacity) in entry_cache.profile:
            busy = direction._busy
            if strict and (busy or backlog):
                # Strict mode: only provably-exact folds.  A busy
                # transmitter or queued backlog means a real packet
                # will cross downstream hops ahead of this train, and
                # its downstream serialization is not visible here.
                return self._refuse(packets, REASON_CONTENTION)
            if queue._bytes + train_bytes > capacity:
                # The event path would tail-drop part of this train;
                # the analytic model delivers everything, so refuse.
                return self._refuse(packets, REASON_CONTENTION)
            if entries[0] < direction._fp_last_entry:
                return self._refuse(packets, REASON_INTERLEAVE)
            jitters = tuple([jitter() for _ in range(count)])
            # Chain the departure recursion through everything the
            # serializer is already committed to: prior reservations,
            # the in-service real packet (departure pinned by
            # _busy_until), and the queued backlog in FIFO order.  In
            # strict mode the latter two were refused above, so this
            # reduces to the provably-exact reservation chain.
            prev_dep = direction._reserved_until
            if busy and direction._busy_until > prev_dep:
                prev_dep = direction._busy_until
            for pending in backlog:
                prev_dep += pending.wire_bytes * 8.0 / bandwidth
            last_delivery = direction._last_delivery
            if record:
                folds.append(_DirectionFold(
                    label=direction._label,
                    bandwidth_bps=bandwidth,
                    propagation=propagation,
                    prev_dep=prev_dep,
                    last_delivery=last_delivery,
                    jitters=jitters))
            arrivals, dep_last, last_delivery = train_schedule(
                entries, wires, bandwidth, propagation,
                prev_dep, last_delivery, jitters)
            commits.append((entries[-1], dep_last, last_delivery))
            entries = arrivals
        arrivals = list(entries)
        if self._blackouts and self._blacked_out(now, arrivals[-1]):
            return self._refuse(packets, REASON_BLACKOUT)

        # ---- commit ---------------------------------------------------
        ip.stats.packets_sent += count
        notify = host._notify_taps
        for packet in packets:
            notify("tx", packet)
        for router in routers:
            router.forwarded += count
        total_bytes = train_bytes
        final = directions[-1]
        for direction, (last_entry, dep_last, last_delivery) in zip(
                directions, commits):
            direction._reserved_until = dep_last
            direction._fp_last_entry = last_entry
            # Delivery-order clamp for any later packet on this wire,
            # virtual or real.
            direction._last_delivery = last_delivery
            stats = direction.stats
            stats.packets_sent += count
            if direction._telemetry is not None:
                direction._ctr_sent.inc(count)
            if direction is final:
                continue
            # Intermediate hops: their deliveries all precede the final
            # arrivals, so the books close synchronously; the final
            # direction delivers through its own event path below.
            stats.packets_delivered += count
            stats.bytes_delivered += total_bytes
            if direction._telemetry is not None:
                direction._ctr_delivered.inc(count)
                direction._ctr_bytes.inc(total_bytes)
        hops = len(routers)
        final._in_flight += count
        schedule_at = sim.schedule_at
        finish = self._finish_virtual
        for packet, arrival in zip(packets, arrivals):
            delivered = packet if hops == 0 else Packet(
                ip=replace(packet.ip, ttl=packet.ip.ttl - hops),
                transport=packet.transport, payload=packet.payload,
                datagram_id=packet.datagram_id, span=packet.span)
            schedule_at(arrival, finish, final, delivered)
        if self._record_ledger:
            self.ledger.append(TrainRecord(
                sent_at=now, wires=wires, directions=tuple(folds),
                arrivals=tuple(arrivals)))
        self.trains_fast += 1
        self.packets_fast += count
        self.events_saved += count * 2 * len(directions) - count
        return True

    def _finish_virtual(self, direction: _Direction,
                        packet: Packet) -> None:
        direction._deliver(packet)

    def _refuse(self, packets: List[Packet], reason: str) -> bool:
        self.trains_fallback += 1
        self.packets_fallback += len(packets)
        self.fallback_reasons[reason] = (
            self.fallback_reasons.get(reason, 0) + 1)
        return False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> FastPathSummary:
        return FastPathSummary(
            trains_fast=self.trains_fast,
            packets_fast=self.packets_fast,
            trains_fallback=self.trains_fallback,
            packets_fallback=self.packets_fallback,
            events_saved=self.events_saved,
            reals_parked=self.reals_parked,
            fallback_reasons=tuple(sorted(self.fallback_reasons.items())))


class _PathEntry:
    """Cached route plus its epoch-validated static profile.

    ``profile`` is a list of per-direction tuples ``(direction,
    bandwidth_bps, propagation, jitter, queue, backlog_deque,
    capacity_bytes)`` — or None with ``reason`` set when a static
    check failed (then every train on this path refuses in O(1) until
    a link mutator bumps the topology epoch).
    """

    __slots__ = ("directions", "routers", "sink", "profile", "reason",
                 "epoch")

    def __init__(self, directions, routers, sink) -> None:
        self.directions = directions
        self.routers = routers
        self.sink = sink
        self.profile = None
        self.reason = None
        self.epoch = -1  # never matches; first use builds the profile


#: Sentinel distinguishing a cached None path from a cache miss.
_MISS = object()

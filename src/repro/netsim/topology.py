"""Topology builder: a WPI-like client behind a multi-hop Internet path.

The paper's setup is one client PC on the WPI campus network reaching
co-located media servers 15–20 router hops away with a median RTT of
40 ms (Figures 1–2).  :func:`build_path_topology` reproduces that shape:

    client --10Mbps-- R1 -- R2 -- ... -- Rn --100Mbps-- {server0, server1}

Both servers sit on the same destination subnet, satisfying the
clip-selection rule of Section II.C (same subnet, same network path),
so a simultaneous RealPlayer + MediaPlayer experiment shares one path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import units
from repro.netsim.addressing import AddressAllocator, IPAddress, Subnet
from repro.netsim.engine import Simulator
from repro.netsim.link import Link, LossModel
from repro.netsim.node import Host, Router

#: The client campus subnet (WPI's real 2002 prefix, for flavor).
CLIENT_SUBNET = Subnet.parse("130.215.0.0/16")

#: The co-located server farm subnet.
SERVER_SUBNET = Subnet.parse("64.14.118.0/24")

#: Backbone router addresses.
BACKBONE_SUBNET = Subnet.parse("10.1.0.0/16")


@dataclass
class PathTopology:
    """The built network, with handles the experiments need."""

    sim: Simulator
    client: Host
    servers: List[Host]
    routers: List[Router]
    links: List[Link]
    client_subnet: Subnet = CLIENT_SUBNET
    server_subnet: Subnet = SERVER_SUBNET
    nominal_rtt: float = 0.040
    hop_count: int = 17

    @property
    def server(self) -> Host:
        """The first server (convenience for single-server scenarios)."""
        return self.servers[0]


def build_path_topology(sim: Simulator, hop_count: int = 17,
                        rtt: float = 0.040, server_count: int = 2,
                        access_bandwidth_bps: float = units.mbps(10),
                        backbone_bandwidth_bps: float = units.mbps(100),
                        bottleneck_bps: Optional[float] = None,
                        loss_probability: float = 0.0,
                        jitter_std: float = 0.0004) -> PathTopology:
    """Build a linear client↔servers path.

    Args:
        hop_count: tracert-style hop count to the servers (routers on
            the path plus the destination itself); must be >= 2.
        rtt: target round-trip time client↔server in seconds; the
            propagation budget is spread evenly over the path links.
        server_count: number of co-located server hosts on the
            destination subnet (the paper streams from two at once).
        access_bandwidth_bps: client access link (paper: 10 Mbps NIC).
        backbone_bandwidth_bps: all other links.
        bottleneck_bps: if given, the middle link is throttled to this
            rate (for the congestion-study extension).
        loss_probability: independent loss on the middle link.
        jitter_std: std-dev (seconds) of Gaussian per-packet extra
            delay on the middle link; models light cross-traffic.

    Returns:
        A :class:`PathTopology`.
    """
    if hop_count < 2:
        raise ValueError("hop_count must be at least 2")
    if server_count < 1:
        raise ValueError("need at least one server")
    if rtt <= 0:
        raise ValueError("rtt must be positive")

    router_count = hop_count - 1
    client_alloc = AddressAllocator(CLIENT_SUBNET)
    server_alloc = AddressAllocator(SERVER_SUBNET)
    backbone_alloc = AddressAllocator(BACKBONE_SUBNET)

    client = Host(sim, "client", client_alloc.allocate())
    routers = [Router(sim, f"r{i + 1}", backbone_alloc.allocate())
               for i in range(router_count)]
    servers = [Host(sim, f"server{i}", server_alloc.allocate())
               for i in range(server_count)]

    # Split the one-way propagation budget evenly over the path links
    # (client->r1, r1->r2, ..., rN->server).
    path_link_count = router_count + 1
    per_link_delay = (rtt / 2.0) / path_link_count

    loss_rng = sim.streams.stream("link-loss")
    jitter_rng = sim.streams.stream("link-jitter")

    def make_jitter(std: float) -> Callable[[], float]:
        if std <= 0:
            return lambda: 0.0
        return lambda: jitter_rng.gauss(0.0, std)

    links: List[Link] = []
    middle_index = path_link_count // 2
    chain: List = [client] + routers
    for index in range(len(chain) - 1):
        is_middle = index == middle_index
        bandwidth = access_bandwidth_bps if index == 0 else backbone_bandwidth_bps
        if is_middle and bottleneck_bps is not None:
            bandwidth = bottleneck_bps
        links.append(Link(
            sim, chain[index], chain[index + 1],
            bandwidth_bps=bandwidth,
            propagation_delay=per_link_delay,
            loss=LossModel(loss_probability if is_middle else 0.0, loss_rng),
            jitter=make_jitter(jitter_std if is_middle else 0.0)))

    last_hop = routers[-1]
    for server in servers:
        bandwidth = backbone_bandwidth_bps
        if router_count == 0 and bottleneck_bps is not None:
            bandwidth = bottleneck_bps
        links.append(Link(sim, last_hop, server,
                          bandwidth_bps=bandwidth,
                          propagation_delay=per_link_delay))

    # Routing: everything at the client heads to r1; each router
    # forwards toward the servers by default and knows the way back to
    # the campus subnet; servers default to the last router.
    client.routing.set_default(routers[0])
    for index, router in enumerate(routers):
        if index + 1 < len(routers):
            router.routing.set_default(routers[index + 1])
        else:
            for server in servers:
                router.routing.add_route(
                    Subnet(server.address, 32), server)
            # Unroutable destinations past the last hop die here.
        back = client if index == 0 else routers[index - 1]
        router.routing.add_route(CLIENT_SUBNET, back)
        if index + 1 < len(routers):
            # The server subnet lives past the default route already.
            pass
    for server in servers:
        server.routing.set_default(last_hop)

    # Backbone addresses need forward routing too, so the client can
    # probe mid-path routers directly (ping of a hop): each router
    # knows the /32 of every later router via its next hop.
    for index, router in enumerate(routers[:-1]):
        for later in routers[index + 1:]:
            router.routing.add_route(Subnet(later.address, 32),
                                     routers[index + 1])

    return PathTopology(sim=sim, client=client, servers=servers,
                        routers=routers, links=links, nominal_rtt=rtt,
                        hop_count=hop_count)


@dataclass
class CampusTopology:
    """A campus of clients behind one egress router (future work §VI:
    "examine traces at an Internet boundary, such as the egress to our
    University, or at least at several players")."""

    sim: Simulator
    clients: List[Host]
    egress: Router
    servers: List[Host]
    routers: List[Router]
    links: List[Link]
    nominal_rtt: float = 0.040


def build_campus_topology(sim: Simulator, client_count: int = 4,
                          hop_count: int = 17, rtt: float = 0.040,
                          server_count: int = 2,
                          access_bandwidth_bps: float = units.mbps(10),
                          egress_bandwidth_bps: float = units.mbps(45),
                          backbone_bandwidth_bps: float = units.mbps(100),
                          ) -> CampusTopology:
    """Build several campus clients sharing one egress to the servers.

        client0 ┐
        client1 ┼── egress ── R1 ── ... ── Rn ── {servers}
        client2 ┘   (45 Mbps T3 uplink by default)

    The egress router is the natural capture point for the paper's
    proposed boundary study: tapping it sees every client's media flow
    at once.

    Raises:
        ValueError: for nonpositive counts or rtt.
    """
    if client_count < 1:
        raise ValueError("need at least one client")
    if hop_count < 2:
        raise ValueError("hop_count must be at least 2")
    if rtt <= 0:
        raise ValueError("rtt must be positive")

    client_alloc = AddressAllocator(CLIENT_SUBNET)
    server_alloc = AddressAllocator(SERVER_SUBNET)
    backbone_alloc = AddressAllocator(BACKBONE_SUBNET)

    clients = [Host(sim, f"client{i}", client_alloc.allocate())
               for i in range(client_count)]
    egress = Router(sim, "egress", client_alloc.allocate())
    router_count = max(1, hop_count - 2)  # egress counts as one hop
    routers = [Router(sim, f"r{i + 1}", backbone_alloc.allocate())
               for i in range(router_count)]
    servers = [Host(sim, f"server{i}", server_alloc.allocate())
               for i in range(server_count)]

    path_link_count = router_count + 1
    per_link_delay = (rtt / 2.0) / (path_link_count + 1)

    links: List[Link] = []
    for client in clients:
        links.append(Link(sim, client, egress,
                          bandwidth_bps=access_bandwidth_bps,
                          propagation_delay=per_link_delay))
        client.routing.set_default(egress)
        egress.routing.add_route(Subnet(client.address, 32), client)

    chain: List = [egress] + routers
    for index in range(len(chain) - 1):
        bandwidth = (egress_bandwidth_bps if index == 0
                     else backbone_bandwidth_bps)
        links.append(Link(sim, chain[index], chain[index + 1],
                          bandwidth_bps=bandwidth,
                          propagation_delay=per_link_delay))

    last_hop = routers[-1]
    for server in servers:
        links.append(Link(sim, last_hop, server,
                          bandwidth_bps=backbone_bandwidth_bps,
                          propagation_delay=per_link_delay))
        server.routing.set_default(last_hop)

    egress.routing.set_default(routers[0])
    for index, router in enumerate(routers):
        if index + 1 < len(routers):
            router.routing.set_default(routers[index + 1])
        else:
            for server in servers:
                router.routing.add_route(Subnet(server.address, 32),
                                         server)
        back = egress if index == 0 else routers[index - 1]
        router.routing.add_route(CLIENT_SUBNET, back)

    return CampusTopology(sim=sim, clients=clients, egress=egress,
                          servers=servers, routers=routers, links=links,
                          nominal_rtt=rtt)

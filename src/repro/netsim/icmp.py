"""ICMP: echo (ping) and time-exceeded (tracert).

The paper verified network conditions with ``ping`` and ``tracert``
before and after every run and derives Figures 1 and 2 from them, so
the reproduction needs a working ICMP path.  Routers answer echoes
addressed to them and emit time-exceeded when a TTL dies; hosts run a
small echo client/server in :class:`IcmpLayer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro import units
from repro.netsim.addressing import IPAddress
from repro.netsim.headers import IPv4Header, IcmpHeader, IpProtocol, PayloadMeta
from repro.netsim.ip import Datagram
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Host, Node


class IcmpType(IntEnum):
    """The ICMP message types the simulator speaks."""

    ECHO_REPLY = 0
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass
class EchoResult:
    """Outcome of one echo exchange, given to the ping callback."""

    responder: IPAddress
    identifier: int
    sequence: int
    rtt: float
    time_exceeded: bool = False


#: Default payload of a Windows ping (32 data bytes).
ECHO_PAYLOAD_BYTES = 32


def _icmp_packet(src: IPAddress, dst: IPAddress, header: IcmpHeader,
                 payload_bytes: int, ttl: int,
                 meta: Optional[PayloadMeta] = None) -> Packet:
    total = units.IPV4_HEADER_BYTES + units.ICMP_HEADER_BYTES + payload_bytes
    ip_header = IPv4Header(src=src, dst=dst, protocol=IpProtocol.ICMP,
                           total_length=total, ttl=ttl)
    return Packet(ip=ip_header, transport=header,
                  payload=meta or PayloadMeta(kind="icmp"))


def answer_echo(node: "Node", request: Packet) -> None:
    """Router-side echo responder (hosts use :class:`IcmpLayer`)."""
    header = request.transport
    if not isinstance(header, IcmpHeader):
        return
    if header.icmp_type != IcmpType.ECHO_REQUEST:
        return
    reply_header = IcmpHeader(icmp_type=IcmpType.ECHO_REPLY,
                              identifier=header.identifier,
                              sequence=header.sequence)
    payload_bytes = request.ip.payload_bytes - units.ICMP_HEADER_BYTES
    reply = _icmp_packet(node.address, request.ip.src, reply_header,
                         payload_bytes, ttl=128, meta=request.payload)
    node.send_packet(reply)


def send_time_exceeded(node: "Node", expired: Packet) -> None:
    """Emit ICMP time-exceeded back to the source of ``expired``.

    The message quotes the original ICMP identifier/sequence (when the
    expired packet was itself an echo request) so a traceroute client
    can match replies to probes, mirroring how real tracert parses the
    quoted header.
    """
    identifier = sequence = 0
    original = expired.transport
    if isinstance(original, IcmpHeader):
        identifier = original.identifier
        sequence = original.sequence
    header = IcmpHeader(icmp_type=IcmpType.TIME_EXCEEDED,
                        identifier=identifier, sequence=sequence)
    # Time-exceeded carries the quoted IP header + 8 bytes of payload.
    message = _icmp_packet(node.address, expired.ip.src, header,
                           units.IPV4_HEADER_BYTES + 8, ttl=128,
                           meta=PayloadMeta(kind="icmp-time-exceeded"))
    node.send_packet(message)


EchoCallback = Callable[[EchoResult], None]


class IcmpLayer:
    """Host-side ICMP: answers echoes, runs echo probes with callbacks."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._next_identifier = 1
        self._pending: Dict[Tuple[int, int], Tuple[float, EchoCallback]] = {}
        host.ip.register_handler(IpProtocol.ICMP, self._on_datagram)

    def send_echo(self, dst: IPAddress, callback: EchoCallback,
                  sequence: int = 1, ttl: int = 128,
                  payload_bytes: int = ECHO_PAYLOAD_BYTES) -> int:
        """Send an echo request; ``callback`` fires on any response.

        Returns the identifier assigned to the probe, which keys the
        pending-table entry (useful for tests and timeout handling).
        """
        identifier = self._next_identifier
        self._next_identifier += 1
        header = IcmpHeader(icmp_type=IcmpType.ECHO_REQUEST,
                            identifier=identifier, sequence=sequence)
        self._pending[(identifier, sequence)] = (self.host.sim.now, callback)
        self.host.ip.send(dst, IpProtocol.ICMP, header,
                          units.ICMP_HEADER_BYTES, payload_bytes,
                          payload=PayloadMeta(kind="icmp-echo"), ttl=ttl)
        return identifier

    def cancel(self, identifier: int, sequence: int) -> bool:
        """Drop a pending probe (timeout); True if it was outstanding."""
        return self._pending.pop((identifier, sequence), None) is not None

    def _on_datagram(self, datagram: Datagram) -> None:
        header = datagram.transport
        if not isinstance(header, IcmpHeader):
            return
        if header.icmp_type == IcmpType.ECHO_REQUEST:
            reply_header = IcmpHeader(icmp_type=IcmpType.ECHO_REPLY,
                                      identifier=header.identifier,
                                      sequence=header.sequence)
            self.host.ip.send(datagram.src, IpProtocol.ICMP, reply_header,
                              units.ICMP_HEADER_BYTES,
                              datagram.transport_payload_bytes,
                              payload=PayloadMeta(kind="icmp-echo-reply"))
            return
        if header.icmp_type in (IcmpType.ECHO_REPLY, IcmpType.TIME_EXCEEDED):
            key = (header.identifier, header.sequence)
            pending = self._pending.pop(key, None)
            if pending is None:
                return
            sent_at, callback = pending
            callback(EchoResult(
                responder=datagram.src, identifier=header.identifier,
                sequence=header.sequence, rtt=self.host.sim.now - sent_at,
                time_exceeded=(header.icmp_type == IcmpType.TIME_EXCEEDED)))

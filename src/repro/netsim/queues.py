"""Router/link queues.

The paper ran under uncongested conditions (~0% loss), but queues still
shape packet trains: back-to-back fragments of a Windows Media ADU
serialize one after another, which is what makes Figure 4's "groups"
visible.  The default is a byte-capacity drop-tail FIFO; RED is
included for the congestion-study extension (the paper's future work
cites [FKSS01]-style queue management).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional

from repro.netsim.packet import Packet
from repro.telemetry.events import QUEUE_DROP
from repro.telemetry.spans import STATUS_DROPPED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.core import Telemetry


@dataclass
class QueueStats:
    """Counters exposed by every queue implementation."""

    enqueued: int = 0
    dropped: int = 0
    dequeued: int = 0
    peak_bytes: int = 0


class DropTailQueue:
    """FIFO with a byte-capacity limit; arrivals beyond it are dropped."""

    def __init__(self, capacity_bytes: int = 64 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        self._telemetry: Optional["Telemetry"] = None
        self._event_fields: dict = {}
        self._depth_gauge = None
        self._drop_counter = None
        self._spans = None
        self._span_link = ""

    def bind_telemetry(self, telemetry: Optional["Telemetry"],
                       **labels: object) -> None:
        """Attach telemetry; the owning link calls this with its
        per-direction labels so depth/drop metrics stay per-hop."""
        self._telemetry = telemetry
        if telemetry is None:
            return
        self._event_fields = dict(labels)
        self._depth_gauge = telemetry.gauge("queue.bytes", **labels)
        self._drop_counter = telemetry.counter("queue.drops", **labels)
        self._spans = telemetry.spans
        self._span_link = str(labels.get("link", ""))

    def _note_drop(self, packet: Packet) -> None:
        self.stats.dropped += 1
        telemetry = self._telemetry
        if self._spans is not None and packet.span is not None:
            self._spans.packet_dropped(packet, telemetry.now(),
                                       STATUS_DROPPED, self._span_link)
        if telemetry is not None:
            self._drop_counter.inc()
            telemetry.emit(QUEUE_DROP, queue_bytes=self._bytes,
                           packet_bytes=packet.ip_bytes,
                           **self._event_fields)

    def offer(self, packet: Packet) -> bool:
        """Enqueue the packet if it fits; return False if dropped."""
        if self._bytes + packet.ip_bytes > self.capacity_bytes:
            self._note_drop(packet)
            return False
        self._queue.append(packet)
        self._bytes += packet.ip_bytes
        self.stats.enqueued += 1
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._bytes)
        if self._telemetry is not None:
            self._depth_gauge.set(self._bytes, self._telemetry.now())
            if self._spans is not None and packet.span is not None:
                self._spans.queue_entered(packet, self._telemetry.now(),
                                          self._span_link)
        return True

    def poll(self) -> Optional[Packet]:
        """Dequeue the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.ip_bytes
        self.stats.dequeued += 1
        if self._telemetry is not None:
            self._depth_gauge.set(self._bytes, self._telemetry.now())
            if self._spans is not None and packet.span is not None:
                self._spans.queue_left(packet, self._telemetry.now())
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes


class RedQueue(DropTailQueue):
    """Random Early Detection, for the congestion-study extension.

    Drops probabilistically once average occupancy exceeds ``min_threshold``
    (fractions of capacity), and always above ``max_threshold``.  Uses an
    exponentially-weighted moving average of queue bytes like the classic
    Floyd/Jacobson design, but simplified to per-arrival updates.
    """

    def __init__(self, capacity_bytes: int = 64 * 1024,
                 min_threshold: float = 0.25, max_threshold: float = 0.75,
                 max_drop_probability: float = 0.1, weight: float = 0.02,
                 rng=None) -> None:
        super().__init__(capacity_bytes)
        if not 0 <= min_threshold < max_threshold <= 1:
            raise ValueError("need 0 <= min_threshold < max_threshold <= 1")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_drop_probability = max_drop_probability
        self.weight = weight
        self._avg_bytes = 0.0
        self._rng = rng

    def offer(self, packet: Packet) -> bool:
        self._avg_bytes = ((1 - self.weight) * self._avg_bytes
                           + self.weight * self._bytes)
        occupancy = self._avg_bytes / self.capacity_bytes
        if occupancy >= self.max_threshold:
            self._note_drop(packet)
            return False
        if occupancy > self.min_threshold:
            span = self.max_threshold - self.min_threshold
            probability = (self.max_drop_probability
                           * (occupancy - self.min_threshold) / span)
            draw = self._rng.random() if self._rng is not None else 0.0
            if draw < probability:
                self._note_drop(packet)
                return False
        return super().offer(packet)

"""Host IP layer: identification, fragmentation, and reassembly.

This is the mechanism behind the paper's headline network-layer
finding: Windows Media servers hand the OS application data units
larger than the path MTU, and the sender's IP layer slices them into a
first fragment carrying the UDP header plus trailing pure-IP fragments
— the "groups of packets" of Figure 4 and the fragment percentages of
Figure 5.  The receiving host reassembles; if any fragment is lost the
whole datagram is eventually discarded (the goodput-degradation hazard
the paper discusses via [FF99]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro import units
from repro.errors import PacketError
from repro.netsim.addressing import IPAddress
from repro.netsim.headers import (
    IPv4Header,
    IpProtocol,
    PayloadMeta,
)
from repro.netsim.packet import Packet
from repro.telemetry.events import FRAGMENT_EMITTED, REASSEMBLY_TIMEOUT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Host

#: RFC 4963 suggests 30s-ish reassembly timers; Windows 2000 used 60s.
REASSEMBLY_TIMEOUT_SECONDS = 30.0


@dataclass
class Datagram:
    """A fully-reassembled transport datagram delivered upward.

    Attributes:
        transport_payload_bytes: bytes carried after the transport
            header (for UDP this is the application data unit size).
        fragment_count: how many IP packets the datagram arrived in
            (1 for unfragmented traffic).
        first_packet_time / last_packet_time: arrival times of the
            first and final fragment, letting players measure how long
            a fragment train took to land.
    """

    src: IPAddress
    dst: IPAddress
    protocol: IpProtocol
    transport: object
    payload: PayloadMeta
    transport_payload_bytes: int
    fragment_count: int
    first_packet_time: float
    last_packet_time: float


@dataclass
class IpStats:
    """Counters for one host's IP layer."""

    datagrams_sent: int = 0
    packets_sent: int = 0
    fragments_sent: int = 0
    datagrams_delivered: int = 0
    packets_received: int = 0
    fragments_received: int = 0
    reassembly_timeouts: int = 0
    wasted_fragment_bytes: int = 0


class ReassemblyBuffer:
    """Collects the fragments of one IP datagram until complete."""

    def __init__(self, first_seen: float) -> None:
        self.first_seen = first_seen
        self.last_seen = first_seen
        self.fragments: List[Packet] = []
        self._have_offsets: set = set()
        self.total_payload: Optional[int] = None
        self._received_payload = 0
        #: Open reassembly span when span tracing is on.
        self.span = None

    def add(self, packet: Packet, now: float) -> None:
        """Record one fragment.

        Raises:
            PacketError: on overlapping/duplicate offsets (the
                simulator never generates them, so one indicates a bug).
        """
        offset = packet.ip.fragment_offset
        if offset in self._have_offsets:
            raise PacketError(f"duplicate fragment offset {offset}")
        self._have_offsets.add(offset)
        self.fragments.append(packet)
        self.last_seen = now
        payload = packet.ip.payload_bytes
        self._received_payload += payload
        if not packet.ip.more_fragments:
            self.total_payload = offset * 8 + payload

    @property
    def complete(self) -> bool:
        return (self.total_payload is not None
                and self._received_payload >= self.total_payload
                and any(p.ip.fragment_offset == 0 for p in self.fragments))

    @property
    def received_bytes(self) -> int:
        return sum(p.ip_bytes for p in self.fragments)

    def first_fragment(self) -> Packet:
        for packet in self.fragments:
            if packet.ip.fragment_offset == 0:
                return packet
        raise PacketError("reassembly buffer has no first fragment")


class IpLayer:
    """Send/receive IP datagrams for one host, fragmenting to the MTU."""

    def __init__(self, host: "Host", mtu: Optional[int] = None) -> None:
        self.host = host
        self.mtu = int(mtu) if mtu else units.DEFAULT_MTU_BYTES
        if self.mtu <= units.IPV4_HEADER_BYTES + 8:
            raise ValueError(f"MTU {self.mtu} too small to carry data")
        self.stats = IpStats()
        self.misrouted = 0
        self._telemetry = host.sim.telemetry
        # Span recorder handle, cached with the same discipline as the
        # rest of the facade: one None check per packet when disabled.
        self._spans = (self._telemetry.spans
                       if self._telemetry is not None else None)
        if self._telemetry is not None:
            registry = self._telemetry.registry
            self._ctr_fragments = registry.counter("ip.fragments_sent",
                                                   host=host.name)
            self._ctr_timeouts = registry.counter("ip.reassembly_timeouts",
                                                  host=host.name)
            self._hist_fragments = registry.histogram(
                "ip.fragments_per_datagram",
                bounds=(1, 2, 3, 4, 6, 8, 12, 16, 32, 64),
                host=host.name)
        self._next_ident = 1
        self._handlers: Dict[IpProtocol, Callable[[Datagram], None]] = {}
        self._buffers: Dict[Tuple[IPAddress, IPAddress, int, IpProtocol],
                            ReassemblyBuffer] = {}
        if host.sim.validator is not None:
            host.sim.validator.register_ip(self)

    # ------------------------------------------------------------------
    # Upward interface
    # ------------------------------------------------------------------
    def register_handler(self, protocol: IpProtocol,
                         handler: Callable[[Datagram], None]) -> None:
        """Route delivered datagrams of ``protocol`` to ``handler``."""
        self._handlers[protocol] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: IPAddress, protocol: IpProtocol, transport: object,
             transport_header_bytes: int, transport_payload_bytes: int,
             payload: Optional[PayloadMeta] = None, ttl: int = 128) -> List[Packet]:
        """Send one transport datagram, fragmenting if necessary.

        Args:
            transport: the transport header object (on the first
                fragment only, as on the wire).
            transport_header_bytes: its wire size in bytes.
            transport_payload_bytes: application bytes after it.

        Returns:
            The list of IP packets emitted (length 1 when unfragmented).
        """
        if transport_payload_bytes < 0:
            raise PacketError("negative transport payload size")
        payload = payload or PayloadMeta()
        ip_payload = transport_header_bytes + transport_payload_bytes
        max_ip_payload = self.mtu - units.IPV4_HEADER_BYTES
        ident = self._next_ident
        self._next_ident += 1
        self.stats.datagrams_sent += 1

        if ip_payload <= max_ip_payload:
            header = IPv4Header(src=self.host.address, dst=dst,
                                protocol=protocol,
                                total_length=units.IPV4_HEADER_BYTES + ip_payload,
                                identification=ident, ttl=ttl)
            packet = Packet(ip=header, transport=transport, payload=payload,
                            datagram_id=ident)
            if self._telemetry is not None:
                self._hist_fragments.observe(1)
            if self._spans is not None and payload.span is not None:
                self._spans.packets_emitted(payload.span,
                                            self.host.sim.now, [packet])
            self._emit([packet])
            return [packet]

        # Fragment: per-fragment payload must be a multiple of 8 bytes
        # except for the last fragment.
        chunk = (max_ip_payload // 8) * 8
        count = math.ceil(ip_payload / chunk)
        packets: List[Packet] = []
        remaining = ip_payload
        offset_bytes = 0
        for index in range(count):
            this_payload = min(chunk, remaining)
            more = index < count - 1
            header = IPv4Header(src=self.host.address, dst=dst,
                                protocol=protocol,
                                total_length=units.IPV4_HEADER_BYTES + this_payload,
                                identification=ident, ttl=ttl,
                                more_fragments=more,
                                fragment_offset=offset_bytes // 8)
            packets.append(Packet(ip=header,
                                  transport=transport if index == 0 else None,
                                  payload=payload, datagram_id=ident))
            offset_bytes += this_payload
            remaining -= this_payload
        self.stats.fragments_sent += len(packets)
        if self._telemetry is not None:
            self._ctr_fragments.inc(len(packets))
            self._hist_fragments.observe(len(packets))
            self._telemetry.emit(FRAGMENT_EMITTED, host=self.host.name,
                                 datagram_id=ident,
                                 fragments=len(packets),
                                 payload_bytes=ip_payload)
        if self._spans is not None and payload.span is not None:
            self._spans.packets_emitted(payload.span, self.host.sim.now,
                                        packets)
        self._emit(packets)
        return packets

    def _emit(self, packets: List[Packet]) -> None:
        director = self.host.sim.fast_path
        if director is not None and director.try_deliver(self, packets):
            return  # delivered analytically; books already closed
        for packet in packets:
            self.stats.packets_sent += 1
            self.host.send_packet(packet)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Handle one delivered IP packet (fragment or whole datagram)."""
        self.stats.packets_received += 1
        now = self.host.sim.now
        traced = self._spans is not None and packet.span is not None
        if traced:
            self._spans.packet_arrived(packet, now)
        if not packet.is_fragment:
            self._deliver_single(packet, now)
            return

        self.stats.fragments_received += 1
        key = (packet.ip.src, packet.ip.dst, packet.ip.identification,
               packet.ip.protocol)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = ReassemblyBuffer(first_seen=now)
            if traced and packet.payload.span is not None:
                buffer.span = self._spans.reassembly_started(
                    packet.payload.span, now, self.host.name)
            self._buffers[key] = buffer
            self.host.sim.schedule_in(REASSEMBLY_TIMEOUT_SECONDS,
                                      self._expire, key)
        buffer.add(packet, now)
        if buffer.complete:
            del self._buffers[key]
            if buffer.span is not None:
                self._spans.reassembly_finished(buffer.span, now,
                                                len(buffer.fragments))
            self._deliver_reassembled(buffer, packet)

    def _deliver_single(self, packet: Packet, now: float) -> None:
        transport = packet.transport
        header_bytes = transport.header_bytes if transport is not None else 0
        datagram = Datagram(
            src=packet.ip.src, dst=packet.ip.dst, protocol=packet.ip.protocol,
            transport=transport, payload=packet.payload,
            transport_payload_bytes=packet.ip.payload_bytes - header_bytes,
            fragment_count=1, first_packet_time=now, last_packet_time=now)
        self._dispatch(datagram)

    def _deliver_reassembled(self, buffer: ReassemblyBuffer,
                             last: Packet) -> None:
        first = buffer.first_fragment()
        transport = first.transport
        header_bytes = transport.header_bytes if transport is not None else 0
        total_payload = buffer.total_payload or 0
        datagram = Datagram(
            src=last.ip.src, dst=last.ip.dst, protocol=last.ip.protocol,
            transport=transport, payload=first.payload,
            transport_payload_bytes=total_payload - header_bytes,
            fragment_count=len(buffer.fragments),
            first_packet_time=buffer.first_seen,
            last_packet_time=buffer.last_seen)
        self._dispatch(datagram)

    def _dispatch(self, datagram: Datagram) -> None:
        handler = self._handlers.get(datagram.protocol)
        if handler is None:
            return  # no listener; silently dropped like a real stack
        self.stats.datagrams_delivered += 1
        handler(datagram)

    def _expire(self, key: Tuple) -> None:
        buffer = self._buffers.get(key)
        if buffer is None:
            return  # completed in the meantime
        remaining = REASSEMBLY_TIMEOUT_SECONDS - (self.host.sim.now
                                          - buffer.last_seen)
        if remaining > 1e-6:
            # Saw more fragments recently; re-arm the timer.  The
            # epsilon guards against a float-underflow livelock where a
            # tiny positive `remaining` cannot advance the clock.
            self.host.sim.schedule_in(remaining, self._expire, key)
            return
        del self._buffers[key]
        self.stats.reassembly_timeouts += 1
        self.stats.wasted_fragment_bytes += buffer.received_bytes
        if buffer.span is not None:
            self._spans.reassembly_timed_out(buffer.span, self.host.sim.now,
                                             len(buffer.fragments))
        if self._telemetry is not None:
            self._ctr_timeouts.inc()
            self._telemetry.emit(REASSEMBLY_TIMEOUT, host=self.host.name,
                                 fragments_held=len(buffer.fragments),
                                 wasted_bytes=buffer.received_bytes)

    @property
    def pending_reassemblies(self) -> int:
        """Datagrams currently waiting for missing fragments."""
        return len(self._buffers)

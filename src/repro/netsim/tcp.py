"""A minimal reliable TCP channel for control traffic.

The players' media data always travels over UDP in these experiments,
but session setup (the RTSP-like DESCRIBE/SETUP/PLAY exchange) rides a
TCP control connection, and its packets appear in captures just as they
did in the paper's Ethereal traces.

This implementation is deliberately small: a three-way handshake,
segmentation to the MSS, cumulative acks, and in-order message
delivery.  There is **no congestion control and no retransmission** —
the simulated control path is lossless and FIFO, so neither is ever
exercised.  DESIGN.md documents this simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro import units
from repro.errors import SocketError
from repro.netsim.addressing import IPAddress
from repro.netsim.headers import IpProtocol, PayloadMeta, TcpHeader
from repro.netsim.ip import Datagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Host

#: Standard Ethernet MSS: MTU minus IP and TCP headers.
MSS_BYTES = units.DEFAULT_MTU_BYTES - units.IPV4_HEADER_BYTES - units.TCP_HEADER_BYTES


class TcpState(Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"


@dataclass
class _MessageEnvelope:
    """Framing metadata carried in the first segment of a message."""

    message: object
    total_bytes: int
    message_id: int


MessageCallback = Callable[["TcpConnection", object], None]
ConnectCallback = Callable[["TcpConnection"], None]


class TcpConnection:
    """One endpoint of an established (or connecting) TCP channel."""

    def __init__(self, layer: "TcpLayer", local_port: int, peer: IPAddress,
                 peer_port: int) -> None:
        self._layer = layer
        self.local_port = local_port
        self.peer = peer
        self.peer_port = peer_port
        self.state = TcpState.CLOSED
        self.on_message: Optional[MessageCallback] = None
        self.on_established: Optional[ConnectCallback] = None
        self._send_seq = 0
        self._recv_seq = 0
        self._next_message_id = 1
        self._partial: Dict[int, int] = {}  # message_id -> bytes outstanding
        self._envelopes: Dict[int, _MessageEnvelope] = {}
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_message(self, message: object, total_bytes: int) -> None:
        """Send an application message of ``total_bytes``.

        The message object itself travels as metadata (the simulator
        does not serialize it); ``total_bytes`` drives segmentation and
        wire sizes.

        Raises:
            SocketError: if the connection is not established.
        """
        if self.state != TcpState.ESTABLISHED:
            raise SocketError(f"connection is {self.state.value}, "
                              "cannot send")
        if total_bytes <= 0:
            raise SocketError("message size must be positive")
        message_id = self._next_message_id
        self._next_message_id += 1
        envelope = _MessageEnvelope(message=message, total_bytes=total_bytes,
                                    message_id=message_id)
        remaining = total_bytes
        first = True
        while remaining > 0:
            segment = min(MSS_BYTES, remaining)
            meta = PayloadMeta(kind="tcp-data",
                               message=envelope if first else message_id)
            self._send_segment(segment, meta)
            remaining -= segment
            first = False
        self.messages_sent += 1

    def _send_segment(self, payload_bytes: int, meta: PayloadMeta,
                      syn: bool = False, ack: bool = True) -> None:
        header = TcpHeader(src_port=self.local_port, dst_port=self.peer_port,
                           seq=self._send_seq, ack=self._recv_seq,
                           syn=syn, ack_flag=ack)
        self._send_seq += max(payload_bytes, 1 if syn else 0)
        self._layer.host.ip.send(self.peer, IpProtocol.TCP, header,
                                 units.TCP_HEADER_BYTES, payload_bytes,
                                 payload=meta)

    # ------------------------------------------------------------------
    # Receiving (driven by TcpLayer)
    # ------------------------------------------------------------------
    def _on_segment(self, header: TcpHeader, payload_bytes: int,
                    meta: PayloadMeta) -> None:
        if header.syn and self.state == TcpState.SYN_SENT:
            # SYN-ACK: complete our side of the handshake.
            self._recv_seq = header.seq + 1
            self.state = TcpState.ESTABLISHED
            self._send_segment(0, PayloadMeta(kind="tcp-ack"))
            if self.on_established is not None:
                self.on_established(self)
            return
        if self.state == TcpState.SYN_RECEIVED and header.ack_flag:
            self.state = TcpState.ESTABLISHED
            if self.on_established is not None:
                self.on_established(self)
            # The final handshake ACK may carry no data; fall through in
            # case the peer piggybacked a message.
        if payload_bytes <= 0 or meta.kind != "tcp-data":
            return
        self._recv_seq = header.seq + payload_bytes
        self._accept_data(payload_bytes, meta)

    def _accept_data(self, payload_bytes: int, meta: PayloadMeta) -> None:
        if isinstance(meta.message, _MessageEnvelope):
            envelope = meta.message
            outstanding = envelope.total_bytes - payload_bytes
            if outstanding <= 0:
                self._complete(envelope)
            else:
                self._partial[envelope.message_id] = outstanding
                self._envelopes[envelope.message_id] = envelope
            return
        message_id = meta.message
        if message_id not in self._partial:
            return  # stray continuation; lossless network so a bug
        self._partial[message_id] -= payload_bytes
        if self._partial[message_id] <= 0:
            envelope = self._envelopes.pop(message_id)
            del self._partial[message_id]
            self._complete(envelope)

    def _complete(self, envelope: _MessageEnvelope) -> None:
        self.messages_received += 1
        if self.on_message is not None:
            self.on_message(self, envelope.message)

    # ------------------------------------------------------------------
    # Handshake initiation
    # ------------------------------------------------------------------
    def _start_connect(self) -> None:
        self.state = TcpState.SYN_SENT
        self._send_segment(0, PayloadMeta(kind="tcp-syn"), syn=True,
                           ack=False)

    def _start_accept(self, header: TcpHeader) -> None:
        self.state = TcpState.SYN_RECEIVED
        self._recv_seq = header.seq + 1
        self._send_segment(0, PayloadMeta(kind="tcp-synack"), syn=True)


class TcpLayer:
    """Per-host connection table and listener registry."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._listeners: Dict[int, ConnectCallback] = {}
        self._connections: Dict[Tuple[IPAddress, int, int], TcpConnection] = {}
        self._next_ephemeral = 32768
        host.ip.register_handler(IpProtocol.TCP, self._on_datagram)

    def listen(self, port: int, on_connection: ConnectCallback) -> None:
        """Accept connections on ``port``; callback fires per accept."""
        if port in self._listeners:
            raise SocketError(f"port {port} already listening")
        self._listeners[port] = on_connection

    def connect(self, dst: IPAddress, dst_port: int) -> TcpConnection:
        """Open a connection; returns immediately with the connection
        in SYN_SENT.  Set ``on_established`` to learn when it is up."""
        local_port = self._next_ephemeral
        self._next_ephemeral += 1
        connection = TcpConnection(self, local_port, dst, dst_port)
        self._connections[(dst, dst_port, local_port)] = connection
        connection._start_connect()
        return connection

    def _on_datagram(self, datagram: Datagram) -> None:
        header = datagram.transport
        if not isinstance(header, TcpHeader):
            return
        key = (datagram.src, header.src_port, header.dst_port)
        connection = self._connections.get(key)
        if connection is None:
            if header.syn and header.dst_port in self._listeners:
                connection = TcpConnection(self, header.dst_port,
                                           datagram.src, header.src_port)
                connection.on_established = self._listeners[header.dst_port]
                self._connections[key] = connection
                connection._start_accept(header)
            return
        connection._on_segment(header, datagram.transport_payload_bytes,
                               datagram.payload)

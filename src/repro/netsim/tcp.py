"""A minimal reliable TCP channel for control traffic.

The players' media data always travels over UDP in these experiments,
but session setup (the RTSP-like DESCRIBE/SETUP/PLAY exchange) rides a
TCP control connection, and its packets appear in captures just as they
did in the paper's Ethereal traces.

This implementation is deliberately small: a three-way handshake,
segmentation to the MSS, cumulative acks, and in-order message
delivery.  By default there is **no congestion control and no
retransmission** — the steady-state control path is lossless and FIFO,
so neither is ever exercised and captures stay byte-identical to the
paper's runs.  DESIGN.md documents this simplification.

When the fault layer is active the control path *does* lose packets,
so the layer can be armed with a :class:`TcpReliability` policy:
go-back-N retransmission with exponential backoff, immediate pure
acks, duplicate suppression, SYN retransmission, and a handshake
deadline that surfaces a clear :class:`~repro.errors.SocketError`
instead of hanging forever in SYN_SENT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro import units
from repro.errors import SocketError
from repro.netsim.addressing import IPAddress
from repro.netsim.headers import IpProtocol, PayloadMeta, TcpHeader
from repro.netsim.ip import Datagram
from repro.telemetry.events import TCP_ABORT, TCP_RETRANSMIT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Host

#: Standard Ethernet MSS: MTU minus IP and TCP headers.
MSS_BYTES = units.DEFAULT_MTU_BYTES - units.IPV4_HEADER_BYTES - units.TCP_HEADER_BYTES


class TcpState(Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"


@dataclass(frozen=True)
class TcpReliability:
    """Retransmission policy for a host's TCP layer.

    ``None`` (the default on :class:`TcpLayer`) means the historical
    fire-and-forget behavior: no timers scheduled, no extra segments,
    byte-identical captures.  The experiment runner arms this only when
    a fault scenario is attached.

    Attributes:
        rto_initial: first retransmission timeout, seconds.
        rto_max: backoff ceiling, seconds (each timeout doubles the RTO
            up to this).
        max_retries: consecutive unacknowledged retransmission rounds
            before the connection aborts with ``SocketError``.
        handshake_timeout: hard deadline for reaching ESTABLISHED; a
            connection still shaking hands past this aborts rather than
            hanging in SYN_SENT forever.
    """

    rto_initial: float = 0.5
    rto_max: float = 2.0
    max_retries: int = 8
    handshake_timeout: float = 3.0


@dataclass
class _MessageEnvelope:
    """Framing metadata carried in the first segment of a message."""

    message: object
    total_bytes: int
    message_id: int


MessageCallback = Callable[["TcpConnection", object], None]
ConnectCallback = Callable[["TcpConnection"], None]


class TcpConnection:
    """One endpoint of an established (or connecting) TCP channel."""

    def __init__(self, layer: "TcpLayer", local_port: int, peer: IPAddress,
                 peer_port: int) -> None:
        self._layer = layer
        self.local_port = local_port
        self.peer = peer
        self.peer_port = peer_port
        self.state = TcpState.CLOSED
        self.on_message: Optional[MessageCallback] = None
        self.on_established: Optional[ConnectCallback] = None
        #: With reliability armed: called when the connection aborts
        #: (handshake deadline or retries exhausted).  Left unset, the
        #: abort raises — a loud failure instead of a silent hang.
        self.on_error: Optional[Callable[["TcpConnection", SocketError],
                                         None]] = None
        self._send_seq = 0
        self._recv_seq = 0
        self._next_message_id = 1
        self._partial: Dict[int, int] = {}  # message_id -> bytes outstanding
        self._envelopes: Dict[int, _MessageEnvelope] = {}
        self.messages_sent = 0
        self.messages_received = 0
        # --- reliability state (inert when the layer has no policy) ---
        self._reliability = layer.reliability
        self.retransmits = 0
        self.aborted = False
        # In-flight segments as (seq, acked_len, payload_bytes, meta,
        # syn, ack_flag); go-back-N resends the whole list on timeout.
        self._unacked: List[Tuple[int, int, int, PayloadMeta, bool, bool]] = []
        self._rto = (self._reliability.rto_initial
                     if self._reliability is not None else 0.0)
        self._retries = 0
        self._timer_generation = 0
        self._opened_at = layer.host.sim.now
        if layer.host.sim.validator is not None:
            layer.host.sim.validator.register_connection(self)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_message(self, message: object, total_bytes: int) -> None:
        """Send an application message of ``total_bytes``.

        The message object itself travels as metadata (the simulator
        does not serialize it); ``total_bytes`` drives segmentation and
        wire sizes.

        Raises:
            SocketError: if the connection is not established.
        """
        if self.state != TcpState.ESTABLISHED:
            raise SocketError(f"connection is {self.state.value}, "
                              "cannot send")
        if total_bytes <= 0:
            raise SocketError("message size must be positive")
        message_id = self._next_message_id
        self._next_message_id += 1
        envelope = _MessageEnvelope(message=message, total_bytes=total_bytes,
                                    message_id=message_id)
        remaining = total_bytes
        first = True
        while remaining > 0:
            segment = min(MSS_BYTES, remaining)
            meta = PayloadMeta(kind="tcp-data",
                               message=envelope if first else message_id)
            self._send_segment(segment, meta)
            remaining -= segment
            first = False
        self.messages_sent += 1

    def _send_segment(self, payload_bytes: int, meta: PayloadMeta,
                      syn: bool = False, ack: bool = True) -> None:
        seq = self._send_seq
        acked_len = max(payload_bytes, 1 if syn else 0)
        self._send_seq += acked_len
        self._transmit(seq, payload_bytes, meta, syn, ack)
        if self._reliability is not None and acked_len > 0:
            self._unacked.append((seq, acked_len, payload_bytes, meta,
                                  syn, ack))
            # Arm only when nothing was outstanding: the RTO times the
            # *oldest* unacked segment.  Restarting it on every send
            # would let steady keepalive/feedback traffic postpone the
            # timeout forever and starve retransmission.
            if len(self._unacked) == 1:
                self._arm_rto()

    def _transmit(self, seq: int, payload_bytes: int, meta: PayloadMeta,
                  syn: bool, ack: bool) -> None:
        """Put one segment on the wire without touching send state —
        shared by first transmission and retransmission."""
        header = TcpHeader(src_port=self.local_port, dst_port=self.peer_port,
                           seq=seq, ack=self._recv_seq,
                           syn=syn, ack_flag=ack)
        self._layer.host.ip.send(self.peer, IpProtocol.TCP, header,
                                 units.TCP_HEADER_BYTES, payload_bytes,
                                 payload=meta)

    # ------------------------------------------------------------------
    # Reliability: timers, retransmission, abort
    # ------------------------------------------------------------------
    def _arm_rto(self, timeout: Optional[float] = None) -> None:
        """(Re)start the retransmission timer; older timers go stale."""
        self._timer_generation += 1
        self._layer.host.sim.schedule_in(
            timeout if timeout is not None else self._rto,
            self._on_rto, self._timer_generation)

    def _on_rto(self, generation: int) -> None:
        if (generation != self._timer_generation or self.aborted
                or not self._unacked):
            return
        policy = self._reliability
        if self.state != TcpState.ESTABLISHED:
            elapsed = self._layer.host.sim.now - self._opened_at
            if elapsed >= policy.handshake_timeout:
                self._abort(
                    f"control connection {self.peer}:{self.peer_port} "
                    f"handshake timed out after {elapsed:.2f}s "
                    f"(state {self.state.value})")
                return
        self._retries += 1
        if self._retries > policy.max_retries:
            self._abort(
                f"connection to {self.peer}:{self.peer_port} gave up "
                f"after {policy.max_retries} retransmission rounds")
            return
        for seq, _, payload_bytes, meta, syn, ack in self._unacked:
            self._transmit(seq, payload_bytes, meta, syn, ack)
            self.retransmits += 1
        telemetry = self._layer.host.sim.telemetry
        if telemetry is not None:
            telemetry.emit(TCP_RETRANSMIT, host=self._layer.host.name,
                           peer=str(self.peer), peer_port=self.peer_port,
                           segments=len(self._unacked), retry=self._retries)
        self._rto = min(self._rto * 2.0, policy.rto_max)
        self._arm_rto()

    def _process_ack(self, ack: int) -> None:
        """Drop every in-flight segment the cumulative ack covers."""
        if not self._unacked:
            return
        before = len(self._unacked)
        self._unacked = [entry for entry in self._unacked
                         if entry[0] + entry[1] > ack]
        if len(self._unacked) < before:
            # Forward progress: reset the backoff.
            self._retries = 0
            self._rto = self._reliability.rto_initial
            if self._unacked:
                self._arm_rto()
            else:
                self._timer_generation += 1  # cancel

    def _abort(self, reason: str) -> None:
        self.aborted = True
        self.state = TcpState.CLOSED
        self._unacked.clear()
        self._timer_generation += 1
        self._layer._drop(self)
        telemetry = self._layer.host.sim.telemetry
        if telemetry is not None:
            telemetry.emit(TCP_ABORT, host=self._layer.host.name,
                           peer=str(self.peer), peer_port=self.peer_port,
                           reason=reason)
        error = SocketError(reason)
        if self.on_error is not None:
            self.on_error(self, error)
            return
        raise error

    # ------------------------------------------------------------------
    # Receiving (driven by TcpLayer)
    # ------------------------------------------------------------------
    def _on_segment(self, header: TcpHeader, payload_bytes: int,
                    meta: PayloadMeta) -> None:
        reliable = self._reliability is not None
        if reliable and header.ack_flag:
            self._process_ack(header.ack)
        if header.syn and self.state == TcpState.SYN_SENT:
            # SYN-ACK: complete our side of the handshake.
            self._recv_seq = header.seq + 1
            self.state = TcpState.ESTABLISHED
            self._send_segment(0, PayloadMeta(kind="tcp-ack"))
            if self.on_established is not None:
                self.on_established(self)
            return
        if header.syn and reliable and self.state == TcpState.ESTABLISHED:
            # Retransmitted SYN-ACK: our final handshake ACK was lost.
            # Re-ack so the peer stops resending and clears its timer.
            self._send_segment(0, PayloadMeta(kind="tcp-ack"))
            return
        if self.state == TcpState.SYN_RECEIVED and header.ack_flag:
            self.state = TcpState.ESTABLISHED
            if self.on_established is not None:
                self.on_established(self)
            # The final handshake ACK may carry no data; fall through in
            # case the peer piggybacked a message.
        if payload_bytes <= 0 or meta.kind != "tcp-data":
            return
        if reliable and header.seq != self._recv_seq:
            # Duplicate (our ack was lost) or a gap go-back-N will
            # refill: either way, a pure ack tells the sender where we
            # really are and we deliver nothing out of order.
            self._send_segment(0, PayloadMeta(kind="tcp-ack"))
            return
        self._recv_seq = header.seq + payload_bytes
        self._accept_data(payload_bytes, meta)
        if reliable:
            # Explicit ack: control traffic is sparse request/response,
            # so waiting to piggyback would leave the peer's timer to
            # expire on every exchange.
            self._send_segment(0, PayloadMeta(kind="tcp-ack"))

    def _accept_data(self, payload_bytes: int, meta: PayloadMeta) -> None:
        if isinstance(meta.message, _MessageEnvelope):
            envelope = meta.message
            outstanding = envelope.total_bytes - payload_bytes
            if outstanding <= 0:
                self._complete(envelope)
            else:
                self._partial[envelope.message_id] = outstanding
                self._envelopes[envelope.message_id] = envelope
            return
        message_id = meta.message
        if message_id not in self._partial:
            return  # stray continuation; lossless network so a bug
        self._partial[message_id] -= payload_bytes
        if self._partial[message_id] <= 0:
            envelope = self._envelopes.pop(message_id)
            del self._partial[message_id]
            self._complete(envelope)

    def _complete(self, envelope: _MessageEnvelope) -> None:
        self.messages_received += 1
        if self.on_message is not None:
            self.on_message(self, envelope.message)

    # ------------------------------------------------------------------
    # Handshake initiation
    # ------------------------------------------------------------------
    def _start_connect(self) -> None:
        self.state = TcpState.SYN_SENT
        self._send_segment(0, PayloadMeta(kind="tcp-syn"), syn=True,
                           ack=False)

    def _start_accept(self, header: TcpHeader) -> None:
        self.state = TcpState.SYN_RECEIVED
        self._recv_seq = header.seq + 1
        self._send_segment(0, PayloadMeta(kind="tcp-synack"), syn=True)


class TcpLayer:
    """Per-host connection table and listener registry."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        #: Retransmission policy inherited by every connection opened
        #: *after* it is set; ``None`` keeps the historical
        #: fire-and-forget behavior (no timers, no extra segments).
        self.reliability: Optional[TcpReliability] = None
        self._listeners: Dict[int, ConnectCallback] = {}
        self._connections: Dict[Tuple[IPAddress, int, int], TcpConnection] = {}
        self._next_ephemeral = 32768
        host.ip.register_handler(IpProtocol.TCP, self._on_datagram)

    def _drop(self, connection: TcpConnection) -> None:
        """Forget an aborted connection so its ports can be reused."""
        for key, value in list(self._connections.items()):
            if value is connection:
                del self._connections[key]

    def listen(self, port: int, on_connection: ConnectCallback) -> None:
        """Accept connections on ``port``; callback fires per accept."""
        if port in self._listeners:
            raise SocketError(f"port {port} already listening")
        self._listeners[port] = on_connection

    def connect(self, dst: IPAddress, dst_port: int) -> TcpConnection:
        """Open a connection; returns immediately with the connection
        in SYN_SENT.  Set ``on_established`` to learn when it is up."""
        local_port = self._next_ephemeral
        self._next_ephemeral += 1
        connection = TcpConnection(self, local_port, dst, dst_port)
        self._connections[(dst, dst_port, local_port)] = connection
        connection._start_connect()
        return connection

    def _on_datagram(self, datagram: Datagram) -> None:
        header = datagram.transport
        if not isinstance(header, TcpHeader):
            return
        key = (datagram.src, header.src_port, header.dst_port)
        connection = self._connections.get(key)
        if connection is None:
            if header.syn and header.dst_port in self._listeners:
                connection = TcpConnection(self, header.dst_port,
                                           datagram.src, header.src_port)
                connection.on_established = self._listeners[header.dst_port]
                self._connections[key] = connection
                connection._start_accept(header)
            return
        connection._on_segment(header, datagram.transport_payload_bytes,
                               datagram.payload)

"""Reproduction of Li, Claypool, Kinicki (WPI 2002):
"MediaPlayer™ versus RealPlayer™ — A Comparison of Network Turbulence".

The library simulates the paper's entire measurement pipeline — a
multi-hop IP network, Windows-Media-like and Real-like streaming
servers, instrumented clients, and an Ethereal-like capture tool — and
provides the paper's contribution as a reusable artifact: turbulence
profiles and Section IV's realistic streaming-flow generators.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro._version import __version__


def run_study(*args, **kwargs):
    """Convenience re-export of :func:`repro.experiments.runner.run_study`.

    Imported lazily so ``import repro`` stays instant.
    """
    from repro.experiments.runner import run_study as _run_study

    return _run_study(*args, **kwargs)


def all_figures():
    """The artifact-generator registry (lazy import)."""
    from repro.experiments.figures import ALL_FIGURES

    return ALL_FIGURES


__all__ = ["__version__", "all_figures", "run_study"]

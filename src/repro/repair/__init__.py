"""Frame-aware loss repair: FEC parity, NACK/retransmission, and
deadline-aware repair scheduling.

The 2002 players both repaired loss — the paper's *recovered packets*
statistic exists because of it — and this package gives the
reproduction that capability: XOR-parity FEC groups on the sender,
receiver-driven NACK -> retransmission with exponential backoff, and a
most-valuable-bytes-first scheduler that drops repairs whose decode
deadline has passed.  Strictly opt-in: a study with ``repair=None``
is byte-identical to one run before this package existed.
"""

from repro.repair.base import RepairConfig
from repro.repair.fec import (FecGroupEncoder, FecGroupSpec, FecMember,
                              recover_block, xor_parity)
from repro.repair.nack import NackManager, NackRequest
from repro.repair.receiver import ReceiverRepair, Recovery
from repro.repair.scheduler import RepairCandidate, schedule_repairs
from repro.repair.sender import SenderRepair

__all__ = [
    "RepairConfig", "FecGroupEncoder", "FecGroupSpec", "FecMember",
    "recover_block", "xor_parity", "NackManager", "NackRequest",
    "ReceiverRepair", "Recovery", "RepairCandidate", "schedule_repairs",
    "SenderRepair",
]

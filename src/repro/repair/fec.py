"""XOR-parity forward error correction.

The codec is the classic single-erasure XOR: parity is the bytewise
XOR of every member block (shorter blocks padded with zeros to the
longest), so any *one* missing member equals the XOR of the parity
with all the survivors, truncated back to the missing block's length.
Two or more losses in a group are unrecoverable by parity and fall
through to NACK/retransmission.

The pure functions (:func:`xor_parity`, :func:`recover_block`) carry
the arithmetic and are property-tested (round-trip for arbitrary group
sizes and loss positions); :class:`FecGroupEncoder` is the sender-side
bookkeeper that batches datagram descriptors into groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class FecMember:
    """Descriptor of one media datagram inside a parity group.

    The parity datagram carries these (the real-world analogue is the
    FEC header listing protected sequence numbers and lengths), which
    is how the receiver learns what a *lost* member contained: its
    frames, media position, and repair value.
    """

    sequence: int
    size_bytes: int
    frame_numbers: Tuple[int, ...] = ()
    media_time: float = 0.0
    keyframe: bool = False
    value_bytes: int = 0


@dataclass(frozen=True)
class FecGroupSpec:
    """One completed parity group, ready to send."""

    index: int
    members: Tuple[FecMember, ...]

    @property
    def parity_bytes(self) -> int:
        """Parity datagram size: the XOR spans the longest member."""
        return max(member.size_bytes for member in self.members)

    @property
    def sequences(self) -> Tuple[int, ...]:
        return tuple(member.sequence for member in self.members)


def xor_parity(blocks: Sequence[bytes]) -> bytes:
    """Bytewise XOR of ``blocks``, zero-padded to the longest.

    Raises:
        ReproError: for an empty block list.
    """
    if not blocks:
        raise ReproError("cannot compute parity over zero blocks")
    parity = bytearray(max(len(block) for block in blocks))
    for block in blocks:
        for offset, value in enumerate(block):
            parity[offset] ^= value
    return bytes(parity)


def recover_block(survivors: Sequence[bytes], parity: bytes,
                  missing_length: int) -> bytes:
    """Rebuild the single missing member of a parity group.

    Args:
        survivors: every member block that *did* arrive.
        parity: the group's parity block.
        missing_length: original length of the lost block (carried in
            the parity header's member descriptors).

    Raises:
        ReproError: when the claimed length exceeds the parity span —
            the descriptors and parity disagree, so the group is
            corrupt rather than merely lossy.
    """
    if missing_length < 0:
        raise ReproError(
            f"missing_length must be nonnegative: {missing_length}")
    if missing_length > len(parity):
        raise ReproError(
            f"missing block claims {missing_length} bytes but parity "
            f"spans only {len(parity)}")
    rebuilt = bytearray(parity)
    for block in survivors:
        for offset, value in enumerate(block):
            rebuilt[offset] ^= value
    return bytes(rebuilt[:missing_length])


class FecGroupEncoder:
    """Sender-side batcher: datagram descriptors in, group specs out.

    Args:
        group_size: members per group (>= 2; use the config to disable
            FEC rather than a degenerate group size).
    """

    def __init__(self, group_size: int) -> None:
        if group_size < 2:
            raise ReproError(
                f"FEC group size must be >= 2: {group_size}")
        self.group_size = group_size
        self.groups_emitted = 0
        self._pending: List[FecMember] = []

    def add(self, member: FecMember) -> Optional[FecGroupSpec]:
        """Account one sent media datagram; a full group closes."""
        self._pending.append(member)
        if len(self._pending) < self.group_size:
            return None
        return self._close()

    def flush(self) -> Optional[FecGroupSpec]:
        """Close a partial trailing group at end of stream.

        A single leftover member still gets parity — it degenerates to
        a duplicate, which is exactly what protecting the final
        datagram requires.
        """
        if not self._pending:
            return None
        return self._close()

    def _close(self) -> FecGroupSpec:
        spec = FecGroupSpec(index=self.groups_emitted,
                            members=tuple(self._pending))
        self.groups_emitted += 1
        self._pending = []
        return spec

"""Receiver-side repair: loss detection, parity decode, NACK pacing.

One :class:`ReceiverRepair` serves one player session.  The player
feeds it every media, parity, and retransmission arrival; it decides
what is missing, repairs single losses from parity on the spot, and
runs the NACK loop for the rest — deadline-aware, most-valuable-bytes
first (:mod:`repro.repair.scheduler`), with exponential backoff per
sequence (:mod:`repro.repair.nack`).  The player applies the returned
:class:`Recovery` records to its own stats and frame arrivals, keeping
this module free of player internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.netsim.headers import PayloadMeta
from repro.repair.base import RepairConfig
from repro.repair.fec import FecMember
from repro.repair.nack import NackManager, NackRequest
from repro.repair.scheduler import RepairCandidate, schedule_repairs
from repro.telemetry.events import (NACK_SENT, REPAIR_ABANDONED,
                                    REPAIR_RECOVERED)

#: Fallback size estimate for a loss observed only as a sequence gap,
#: before any parity header names the real size.
_DEFAULT_GAP_BYTES = 900


@dataclass(frozen=True)
class Recovery:
    """One repaired media sequence, for the player to apply."""

    sequence: int
    method: str  # "parity" | "rtx"
    frame_numbers: Tuple[int, ...]
    media_time: float
    size_bytes: int
    before_deadline: bool


class ReceiverRepair:
    """Per-player repair state machine.

    Args:
        config: the armed repair configuration.
        sim: simulator, for the clock and NACK retry timers.
        family: player family label stamped on repair events.
        session_id: streaming session the NACKs name.
        nominal_fps: clip frame rate, for frame decode deadlines.
        send_nack: callback delivering a :class:`NackRequest` to the
            server over the control channel.
        playout_start: callback reading the delay buffer's playout
            start time (``None`` until the preroll fills).
        telemetry: telemetry facade, or ``None`` headless.
    """

    def __init__(self, config: RepairConfig, sim, family: str,
                 session_id: int, nominal_fps: float,
                 send_nack: Callable[[NackRequest], None],
                 playout_start: Callable[[], Optional[float]],
                 telemetry=None) -> None:
        self.config = config
        self.sim = sim
        self.family = family
        self.session_id = session_id
        self.nominal_fps = nominal_fps
        self._send_nack = send_nack
        self._playout_start = playout_start
        self._telemetry = telemetry
        self.nack = NackManager(config.max_retries, config.nack_timeout)
        self._received = set()
        self._last_media_size = _DEFAULT_GAP_BYTES
        self._tick_scheduled = False
        self._closed = False
        # Receiver-side repair ledger (audited alongside the sender's).
        self.parity_received = 0
        self.parity_bytes_received = 0
        self.rtx_received = 0
        self.rtx_bytes_received = 0
        self.duplicate_rtx = 0
        self.recovered_parity = 0
        self.recovered_rtx = 0
        self.recovered_before_deadline = 0
        self.abandoned_deadline = 0
        self.abandoned_retries = 0
        self.nacks_sent = 0
        self.nack_bytes_sent = 0

    # ------------------------------------------------------------------
    # Player arrival hooks
    # ------------------------------------------------------------------
    def on_media(self, sequence: int, size: int) -> None:
        """Every in-order media datagram the player accepts."""
        self._received.add(sequence)
        self._last_media_size = size

    def on_gap(self, first_missing: int, last_missing: int,
               next_media_time: float, now: float) -> None:
        """A sequence gap surfaced at the next media arrival.

        The lost datagrams' contents are unknown here, so candidates
        carry neighbor-based estimates; a parity header later upgrades
        them (``RepairCandidate.exact``).
        """
        if not self.config.nack:
            return
        deadline = self._deadline_for_media_time(next_media_time)
        for sequence in range(first_missing, last_missing + 1):
            size = max(1, self._last_media_size)
            self.nack.note_missing(RepairCandidate(
                sequence=sequence, size_bytes=size, deadline=deadline,
                value_bytes=size, media_time=next_media_time,
                exact=False), now)
        self._schedule_tick(0.0)

    def on_parity(self, meta: PayloadMeta, size: int,
                  now: float) -> List[Recovery]:
        """A parity datagram arrived: decode or refine NACK state.

        Links deliver in order, so members not yet received when their
        group's parity arrives are genuinely lost.  Exactly one missing
        member is rebuilt on the spot; more than one exceeds XOR parity
        and falls back to NACK with the header's exact metadata.
        """
        self.parity_received += 1
        self.parity_bytes_received += size
        missing = [member for member in meta.fec_members
                   if member.sequence not in self._received
                   and member.sequence not in self.nack.recovered]
        recoveries: List[Recovery] = []
        if len(missing) == 1:
            recovery = self._recover(missing[0], now, method="parity")
            if recovery is not None:
                recoveries.append(recovery)
        elif missing and self.config.nack:
            for member in missing:
                self.nack.note_missing(self._candidate_for(member), now)
            self._schedule_tick(0.0)
        return recoveries

    def on_retransmit(self, meta: PayloadMeta, size: int,
                      now: float) -> Optional[Recovery]:
        """A retransmitted media datagram arrived."""
        self.rtx_received += 1
        self.rtx_bytes_received += size
        member = meta.fec_members[0] if meta.fec_members else FecMember(
            sequence=meta.adu_sequence, size_bytes=size,
            frame_numbers=meta.frame_numbers, media_time=meta.media_time)
        if (member.sequence in self._received
                or member.sequence in self.nack.recovered):
            self.duplicate_rtx += 1
            return None
        return self._recover(member, now, method="rtx")

    def close(self) -> None:
        """Stop the NACK loop (end of stream or session teardown)."""
        self._closed = True

    # ------------------------------------------------------------------
    # NACK loop
    # ------------------------------------------------------------------
    def _schedule_tick(self, delay: float) -> None:
        if self._tick_scheduled or self._closed or not self.config.nack:
            return
        self._tick_scheduled = True
        self.sim.schedule_in(delay, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._closed:
            return
        now = self.sim.now
        due = self.nack.due(now)
        selected, expired = schedule_repairs(
            due, now, self.config.request_budget_bytes)
        for candidate in expired:
            self._abandon(candidate.sequence, "deadline")
        request_sequences: List[int] = []
        for candidate in selected:
            if self.nack.exhausted(candidate.sequence):
                self._abandon(candidate.sequence, "retries")
                continue
            request_sequences.append(candidate.sequence)
        if request_sequences:
            request = NackRequest(session_id=self.session_id,
                                  sequences=tuple(request_sequences),
                                  sent_at=now)
            self.nacks_sent += 1
            self.nack_bytes_sent += request.wire_bytes
            self._send_nack(request)
            for sequence in request_sequences:
                self.nack.on_requested(sequence, now)
            if self._telemetry is not None:
                self._telemetry.emit(NACK_SENT, family=self.family,
                                     sequences=len(request_sequences),
                                     first=request_sequences[0],
                                     bytes=request.wire_bytes)
        next_due = self.nack.next_due_at()
        if next_due is not None:
            self._schedule_tick(max(0.0, next_due - now))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidate_for(self, member: FecMember) -> RepairCandidate:
        return RepairCandidate(
            sequence=member.sequence, size_bytes=max(1, member.size_bytes),
            deadline=self._deadline_for(member),
            value_bytes=max(member.value_bytes, member.size_bytes),
            frame_numbers=member.frame_numbers,
            media_time=member.media_time, keyframe=member.keyframe,
            exact=True)

    def _deadline_for(self, member: FecMember) -> Optional[float]:
        if member.frame_numbers and self.nominal_fps > 0:
            media_time = min(member.frame_numbers) / self.nominal_fps
        else:
            media_time = member.media_time
        return self._deadline_for_media_time(media_time)

    def _deadline_for_media_time(self,
                                 media_time: float) -> Optional[float]:
        start = self._playout_start()
        if start is None:
            return None
        return start + media_time + self.config.deadline_slack

    def _recover(self, member: FecMember, now: float,
                 method: str) -> Optional[Recovery]:
        if not self.nack.on_recovered(member.sequence):
            return None
        deadline = self._deadline_for(member)
        before = deadline is None or now <= deadline
        if method == "parity":
            self.recovered_parity += 1
        else:
            self.recovered_rtx += 1
        if before:
            self.recovered_before_deadline += 1
        if self._telemetry is not None:
            self._telemetry.emit(REPAIR_RECOVERED, family=self.family,
                                 sequence=member.sequence, method=method,
                                 frames=len(member.frame_numbers),
                                 before_deadline=before)
        return Recovery(sequence=member.sequence, method=method,
                        frame_numbers=member.frame_numbers,
                        media_time=member.media_time,
                        size_bytes=member.size_bytes,
                        before_deadline=before)

    def _abandon(self, sequence: int, reason: str) -> None:
        self.nack.abandon(sequence, reason)
        if reason == "deadline":
            self.abandoned_deadline += 1
        else:
            self.abandoned_retries += 1
        if self._telemetry is not None:
            self._telemetry.emit(REPAIR_ABANDONED, family=self.family,
                                 sequence=sequence, reason=reason)

"""Sender-side repair: FEC parity emission and NACK-driven
retransmission, bolted onto a pacer.

One :class:`SenderRepair` serves one streaming session (mirroring
:class:`repro.cc.controller.CcSessionController`).  It observes every
media datagram the pacer sends, closes XOR parity groups, answers
NACKs out of its send history, and meters everything against the
session's repair budget.  All repair traffic flows through the pacer's
side channel (:meth:`repro.servers.pacing.Pacer.send_repair`), which
deliberately bypasses the media byte ledger: ``bytes_sent``, the
budget ledger, and the ADU sequence space describe *media*, and the
``fec-conservation`` invariant audits the separate repair ledger kept
here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.media.gop import frame_value_map
from repro.netsim.headers import PayloadMeta
from repro.repair.base import RepairConfig
from repro.repair.fec import FecGroupEncoder, FecGroupSpec, FecMember
from repro.repair.nack import NackRequest
from repro.telemetry.events import FEC_PARITY_SENT, RETRANSMIT_SENT


class SenderRepair:
    """Per-session sender repair state machine.

    Args:
        config: the armed repair configuration (never null — the
            server only builds repair state when a mechanism is on).
    """

    def __init__(self, config: RepairConfig) -> None:
        self.config = config
        self.pacer = None
        self._encoder: Optional[FecGroupEncoder] = (
            FecGroupEncoder(config.fec_group) if config.fec_group else None)
        #: Send history: ADU sequence -> member descriptor, the source
        #: of truth for retransmissions and parity headers.
        self._history: Dict[int, FecMember] = {}
        self._rtx_attempts: Dict[int, int] = {}
        self._values = None
        # The repair ledger audited by ``fec-conservation``.
        self.parity_groups_sent = 0
        self.parity_bytes_sent = 0
        self.rtx_sent = 0
        self.rtx_bytes_sent = 0
        self.budget_spent = 0
        self.budget_denied = 0
        self.nacks_received = 0
        self.nack_sequences_received = 0
        self.unknown_sequences = 0

    @property
    def family(self) -> str:
        return self.pacer.clip.family.name.lower()

    def bind(self, pacer) -> None:
        """Attach to the session's pacer and index its frame values."""
        self.pacer = pacer
        self._values = frame_value_map(pacer.schedule)
        if pacer.sim.validator is not None:
            pacer.sim.validator.register_repair(self)

    # ------------------------------------------------------------------
    # Pacer hooks
    # ------------------------------------------------------------------
    def on_media_sent(self, meta: PayloadMeta, size: int) -> None:
        """Record one sent media datagram; emit parity on group close."""
        member = self._describe(meta, size)
        self._history[member.sequence] = member
        if self._encoder is None:
            return
        spec = self._encoder.add(member)
        if spec is not None:
            self._send_parity(spec)

    def on_stream_end(self) -> None:
        """Flush a partial trailing parity group before end-of-stream."""
        if self._encoder is None:
            return
        spec = self._encoder.flush()
        if spec is not None:
            self._send_parity(spec)

    # ------------------------------------------------------------------
    # NACK handling (called by the server on a control-channel request)
    # ------------------------------------------------------------------
    def on_nack(self, request: NackRequest, now: float) -> None:
        """Retransmit what the receiver asked for, budget permitting."""
        self.nacks_received += 1
        self.nack_sequences_received += len(request.sequences)
        for sequence in request.sequences:
            member = self._history.get(sequence)
            if member is None:
                self.unknown_sequences += 1
                continue
            attempts = self._rtx_attempts.get(sequence, 0)
            if attempts > self.config.max_retries:
                continue
            if not self._spend(member.size_bytes):
                continue
            self._rtx_attempts[sequence] = attempts + 1
            self.rtx_sent += 1
            self.rtx_bytes_sent += member.size_bytes
            meta = PayloadMeta(kind="media-rtx",
                               adu_sequence=member.sequence,
                               frame_numbers=member.frame_numbers,
                               media_time=member.media_time,
                               retransmit_of=member.sequence,
                               fec_members=(member,))
            self.pacer.send_repair(member.size_bytes, meta)
            telemetry = self.pacer.sim.telemetry
            if telemetry is not None:
                telemetry.emit(RETRANSMIT_SENT, family=self.family,
                               sequence=member.sequence,
                               attempt=attempts + 1,
                               bytes=member.size_bytes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _describe(self, meta: PayloadMeta, size: int) -> FecMember:
        keyframe = False
        value = size
        for number in meta.frame_numbers:
            entry = self._values.get(number)
            if entry is None:
                continue
            keyframe = keyframe or entry.keyframe
            # The datagram's worth is the best chain it completes.
            value = max(value, entry.dependent_bytes)
        return FecMember(sequence=meta.adu_sequence, size_bytes=size,
                         frame_numbers=meta.frame_numbers,
                         media_time=meta.media_time,
                         keyframe=keyframe, value_bytes=value)

    def _send_parity(self, spec: FecGroupSpec) -> None:
        size = spec.parity_bytes
        if not self._spend(size):
            return
        self.parity_groups_sent += 1
        self.parity_bytes_sent += size
        meta = PayloadMeta(kind="fec-parity",
                           adu_sequence=spec.members[-1].sequence,
                           fec_group=spec.index,
                           fec_members=spec.members)
        self.pacer.send_repair(size, meta)
        telemetry = self.pacer.sim.telemetry
        if telemetry is not None:
            telemetry.emit(FEC_PARITY_SENT, family=self.family,
                           group=spec.index, members=len(spec.members),
                           bytes=size)

    def _spend(self, amount: int) -> bool:
        if self.budget_spent + amount > self.config.repair_budget_bytes:
            self.budget_denied += 1
            return False
        self.budget_spent += amount
        return True

"""Deadline-aware, value-dense repair scheduling.

Repair bandwidth is scarce (the sender's repair budget, the receiver's
per-request cap), so which losses to chase matters.  The scheduler
implements the most-valuable-bytes-first discipline: each candidate
carries the bytes that stay decodable if it is repaired
(``value_bytes`` — a keyframe is worth its whole GOP, a late P-frame
only its own tail; see :mod:`repro.media.gop`), and selection greedily
packs the request budget by value *density* (value per requested
byte).  Candidates whose decode deadline has already passed are
expired, not requested: a repair that cannot arrive in time is pure
queue poison, and dropping it is what keeps unrecoverable P-frame loss
from stalling playout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass
class RepairCandidate:
    """One lost media sequence under consideration for repair.

    Attributes:
        sequence: the missing datagram's ADU sequence number.
        size_bytes: bytes a retransmission would cost.
        deadline: absolute simulated time the data must arrive to
            decode on time (slack already applied); ``None`` before
            playout starts, meaning no deadline pressure yet.
        value_bytes: schedule bytes kept decodable by this repair.
        frame_numbers: frames the datagram carried (empty when only a
            gap was observed and the parity header never arrived).
        media_time: stream position, for deadline estimation.
        keyframe: whether a keyframe rides on this datagram.
        exact: True when the metadata came from a parity header rather
            than a neighbor-based gap estimate.
    """

    sequence: int
    size_bytes: int
    deadline: Optional[float] = None
    value_bytes: int = 0
    frame_numbers: Tuple[int, ...] = ()
    media_time: float = 0.0
    keyframe: bool = False
    exact: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ReproError(
                f"candidate size must be positive: {self.size_bytes}")
        if self.value_bytes < 0:
            raise ReproError(
                f"candidate value must be nonnegative: {self.value_bytes}")

    @property
    def value_density(self) -> float:
        return self.value_bytes / self.size_bytes


def schedule_repairs(
        candidates: Sequence[RepairCandidate], now: float,
        budget_bytes: int,
) -> Tuple[List[RepairCandidate], List[RepairCandidate]]:
    """Pick which losses to request, best value first, under budget.

    Returns ``(selected, expired)``: ``selected`` is the ordered
    request list fitting ``budget_bytes``; ``expired`` are candidates
    whose deadline has passed and must be abandoned (deadline drop).
    Candidates that merely miss the budget cut stay pending for the
    next scheduling round and appear in neither list.

    Ordering is deterministic: value density descending, then earlier
    deadline, then lower sequence.
    """
    if budget_bytes <= 0:
        raise ReproError(f"budget must be positive: {budget_bytes}")
    live: List[RepairCandidate] = []
    expired: List[RepairCandidate] = []
    for candidate in candidates:
        if candidate.deadline is not None and now > candidate.deadline:
            expired.append(candidate)
        else:
            live.append(candidate)
    live.sort(key=lambda c: (
        -c.value_density,
        c.deadline if c.deadline is not None else float("inf"),
        c.sequence))
    selected: List[RepairCandidate] = []
    spent = 0
    for candidate in live:
        if spent + candidate.size_bytes > budget_bytes and selected:
            continue
        selected.append(candidate)
        spent += candidate.size_bytes
    return selected, expired

"""Receiver-driven NACK state and the retransmission request wire
format.

The manager is deliberately dumb about *time* — the receiver-side
:class:`~repro.repair.receiver.ReceiverRepair` drives it from the
simulation clock — and strict about *state*: a sequence moves
``missing -> requested (with backoff) -> recovered | abandoned`` and
never travels backwards.  The ``repair-no-duplication`` invariant
checks the one property everything downstream relies on: once a
sequence is recovered (by parity *or* retransmission), the manager
never asks for it again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.repair.scheduler import RepairCandidate

#: Wire size of a NACK control message: fixed header plus one 32-bit
#: sequence per requested datagram.
NACK_HEADER_BYTES = 24
NACK_SEQUENCE_BYTES = 4


@dataclass(frozen=True)
class NackRequest:
    """Client -> server retransmission request (control channel).

    Mirrors :class:`repro.servers.feedback.ReceiverReport`: a frozen
    message object carried as TCP payload metadata.
    """

    session_id: int
    sequences: Tuple[int, ...]
    sent_at: float

    @property
    def wire_bytes(self) -> int:
        return NACK_HEADER_BYTES + NACK_SEQUENCE_BYTES * len(self.sequences)


@dataclass
class _PendingRepair:
    candidate: RepairCandidate
    attempts: int = 0
    next_due: float = 0.0


class NackManager:
    """Tracks which sequences are missing, requested, or settled.

    Args:
        max_retries: re-requests per sequence after the first NACK.
        timeout: seconds to the first retry; doubles per attempt.
    """

    def __init__(self, max_retries: int, timeout: float) -> None:
        if max_retries < 0:
            raise ReproError(
                f"max_retries must be nonnegative: {max_retries}")
        if timeout <= 0:
            raise ReproError(f"timeout must be positive: {timeout}")
        self.max_retries = max_retries
        self.timeout = timeout
        self.recovered: Set[int] = set()
        self.abandoned: Dict[int, str] = {}
        #: Count of requests attempted for an already-recovered
        #: sequence.  Structurally impossible; the
        #: ``repair-no-duplication`` invariant asserts it stays 0.
        self.requests_after_repair = 0
        self._pending: Dict[int, _PendingRepair] = {}

    def note_missing(self, candidate: RepairCandidate, now: float) -> bool:
        """Register a lost sequence as repairable; idempotent.

        Returns True when this call opened a new pending entry.  A
        sequence already pending keeps its retry state but adopts the
        new candidate if it carries better metadata (a parity header
        upgrading a blind gap estimate).
        """
        sequence = candidate.sequence
        if sequence in self.recovered or sequence in self.abandoned:
            return False
        pending = self._pending.get(sequence)
        if pending is not None:
            if candidate.exact and not pending.candidate.exact:
                pending.candidate = candidate
            return False
        self._pending[sequence] = _PendingRepair(
            candidate=candidate, next_due=now)
        return True

    def due(self, now: float) -> List[RepairCandidate]:
        """Candidates whose (re)request timer has fired, sequence order."""
        ready: List[RepairCandidate] = []
        for sequence in sorted(self._pending):
            pending = self._pending[sequence]
            if pending.next_due <= now:
                ready.append(pending.candidate)
        return ready

    def on_requested(self, sequence: int, now: float) -> None:
        """A NACK naming ``sequence`` went out; start its backoff."""
        if sequence in self.recovered:
            self.requests_after_repair += 1
            return
        pending = self._pending.get(sequence)
        if pending is None:
            return
        pending.attempts += 1
        pending.next_due = now + self.timeout * (2 ** (pending.attempts - 1))

    def on_recovered(self, sequence: int) -> bool:
        """Sequence repaired (parity or RTX).  Returns False on a
        duplicate — the caller must not apply the repair twice."""
        if sequence in self.recovered:
            return False
        self.recovered.add(sequence)
        self._pending.pop(sequence, None)
        self.abandoned.pop(sequence, None)
        return True

    def abandon(self, sequence: int, reason: str) -> None:
        if sequence in self.recovered:
            return
        self._pending.pop(sequence, None)
        self.abandoned.setdefault(sequence, reason)

    def exhausted(self, sequence: int) -> bool:
        """True once the sequence has spent all its NACK attempts."""
        pending = self._pending.get(sequence)
        if pending is None:
            return False
        return pending.attempts > self.max_retries

    def pending_sequences(self) -> Tuple[int, ...]:
        return tuple(sorted(self._pending))

    def next_due_at(self) -> Optional[float]:
        """Earliest retry timer among pending sequences, or None."""
        if not self._pending:
            return None
        return min(entry.next_due for entry in self._pending.values())

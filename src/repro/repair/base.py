"""Repair configuration: the picklable knob block for the loss-repair
stack.

``RepairConfig`` mirrors :class:`repro.cc.base.CcConfig`: frozen,
picklable, validated at construction, and fingerprinted into the study
cache key.  A study armed with a config behaves identically to a
pre-repair study when the config ``is_null`` (both mechanisms off);
``repair=None`` skips construction entirely and is the byte-identical
legacy path.

Two mechanisms, independently switchable:

* **FEC** — the sender XORs every ``fec_group`` media datagrams into
  one parity datagram; the receiver can rebuild any *single* lost
  member of a group from the parity plus the survivors, with zero
  round trips.
* **NACK/RTX** — the receiver detects sequence gaps and asks the
  server to retransmit, retrying with exponential backoff
  (``nack_timeout * 2**attempt``) up to ``max_retries`` times.

Both draw from one sender-side ``repair_budget_bytes`` so repair
overhead is bounded, and the receiver's per-request spend is capped by
``request_budget_bytes`` — the scheduler fills that budget most
valuable bytes first (see :mod:`repro.repair.scheduler`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class RepairConfig:
    """Loss-repair selection + tuning, with a stable digest.

    Attributes:
        fec_group: media datagrams per XOR parity group; ``0`` disables
            FEC entirely.
        nack: arm receiver-driven NACK -> retransmission.
        max_retries: NACK re-requests per sequence after the first.
        nack_timeout: seconds before the first NACK retry; doubles per
            attempt (exponential backoff).
        repair_budget_bytes: sender-side cap on parity + RTX bytes per
            session; once spent, further repair is refused.
        request_budget_bytes: receiver-side cap on the media bytes one
            NACK message may ask to have retransmitted.
        deadline_slack: seconds past a frame's decode deadline a repair
            is still counted as arriving in time (matches the player's
            late-frame tolerance).
    """

    fec_group: int = 8
    nack: bool = True
    max_retries: int = 3
    nack_timeout: float = 0.25
    repair_budget_bytes: int = 512_000
    request_budget_bytes: int = 16_000
    deadline_slack: float = 0.25

    def __post_init__(self) -> None:
        if self.fec_group < 0:
            raise ReproError(
                f"fec_group must be nonnegative: {self.fec_group}")
        if self.fec_group == 1:
            raise ReproError(
                "fec_group=1 duplicates every datagram; use >= 2 "
                "(or 0 to disable FEC)")
        if self.max_retries < 0:
            raise ReproError(
                f"max_retries must be nonnegative: {self.max_retries}")
        if self.nack_timeout <= 0:
            raise ReproError("nack_timeout must be positive")
        if self.repair_budget_bytes <= 0:
            raise ReproError("repair_budget_bytes must be positive")
        if self.request_budget_bytes <= 0:
            raise ReproError("request_budget_bytes must be positive")
        if self.deadline_slack < 0:
            raise ReproError("deadline_slack must be nonnegative")

    @property
    def is_null(self) -> bool:
        """Neither mechanism armed: behaviorally a no-op config."""
        return self.fec_group == 0 and not self.nack

    def fingerprint(self) -> str:
        material = json.dumps(
            {"fec_group": self.fec_group, "nack": self.nack,
             "max_retries": self.max_retries,
             "nack_timeout": self.nack_timeout,
             "repair_budget_bytes": self.repair_budget_bytes,
             "request_budget_bytes": self.request_budget_bytes,
             "deadline_slack": self.deadline_slack},
            sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(
            f"repair\n{material}".encode()).hexdigest()[:16]
        return f"repair-xor:{digest}"

"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script):

* ``study``      — run the Table 1 sweep and print every artifact.
* ``figure ID``  — regenerate one table/figure (``fig01``..``fig15``,
  ``table1``, ``sec4``).
* ``table1``     — print the clip table without running experiments.
* ``generate``   — synthesize a Section IV flow; optionally export
  pcap/CSV.
* ``pcap-info``  — summarize any libpcap file (fragmentation, rates).
* ``telemetry``  — run the sweep fully instrumented; print the metric
  summary and export JSON / JSON-lines / CSV artifacts.
* ``spans``      — run the sweep with causal span tracing; print the
  per-hop waterfalls of the slowest ADUs and the WMS-vs-RealServer
  latency-attribution table; export Chrome-trace / JSONL artifacts.
* ``faults``     — inject a named fault scenario into one pair run and
  print the recovery report (``--list`` shows the scenarios).
* ``cc``         — run one clip set under a named congestion
  controller (``repro.cc``) and print the controller's state summary
  (``--list`` shows the controllers).
* ``repair``     — run one clip set with the loss-repair stack armed
  (``repro.repair``: XOR parity, NACK retransmission, deadline-aware
  scheduling) under a fault scenario and print the repair ledger and
  per-viewer QoE scores.
* ``validate``   — run a seeded study with every runtime invariant
  checked (``repro.validate``); ``--study`` runs the differential
  oracle (sequential vs parallel vs cache), ``--golden`` re-checks the
  pinned golden traces, ``--cc``/``--abr`` pick a transport.
  Non-zero exit on any violation or divergence.
* ``watch``      — replay a streamed study's per-run records (``repro
  study --stream-jsonl``) through rolling z-score baselines; exits 1
  when a rebuffer/loss/delivery anomaly rule trips, so CI can gate on
  study health.
* ``cache``      — inspect or clear the persistent study cache.

``study --progress`` renders a live status line (runs done/total, ETA,
cache state, violations) from heartbeat records — sequential or pool
workers alike — with a deterministic non-TTY fallback; ``study
--stream-jsonl PATH`` writes each run's online-folded turbulence
roll-up as one JSON line for ``repro watch``.

``scorecard --modern`` re-runs the sweep under each transport (2002
push, AIMD, delay-gradient, ABR ladder) and prints the figure-for-
figure then-vs-now table (optionally an SVG chart).

Studies fan out across worker processes with ``--jobs N`` (0 = one per
CPU) and, for ``repro study``, persist to the on-disk cache so a second
invocation in a fresh process skips the simulation entirely.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'MediaPlayer vs RealPlayer: A "
                    "Comparison of Network Turbulence' (WPI 2002)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser(
        "study", help="run the full Table 1 sweep and print the report")
    study.add_argument("--seed", type=int, default=2002)
    study.add_argument("--scale", type=float, default=1.0,
                       help="clip duration scale (use <1 for a fast run)")
    study.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep "
                            "(0 = one per CPU; default 1, sequential)")
    study.add_argument("--no-cache", action="store_true",
                       help="always simulate; skip the study caches")
    study.add_argument("--fast-path", nargs="?", const="on",
                       choices=["on", "strict"], default=None,
                       dest="fast_path",
                       help="deliver uncontended packet trains "
                            "analytically instead of event-per-packet "
                            "(see repro.netsim.flowlevel); 'strict' "
                            "accepts only provably-exact trains")
    study.add_argument("--progress", action="store_true",
                       help="live status line while the sweep runs "
                            "(single in-place line on a TTY; one "
                            "deterministic line per run otherwise)")
    study.add_argument("--stream-jsonl", default=None,
                       help="write each run's online-folded turbulence "
                            "roll-up as one JSON line (feeds `repro "
                            "watch`); implies a fresh simulation")
    study.add_argument("--plots", action="store_true",
                       help="include ASCII plots")
    study.add_argument("--html",
                       help="also write a standalone HTML report")

    figure = commands.add_parser(
        "figure", help="regenerate one paper artifact")
    figure.add_argument("figure_id",
                        help="fig01..fig15, table1, or sec4")
    figure.add_argument("--seed", type=int, default=2002)
    figure.add_argument("--scale", type=float, default=1.0)
    figure.add_argument("--plots", action="store_true")
    figure.add_argument("--csv", help="also write the data as CSV")

    probe = commands.add_parser(
        "probe", help="TCP-friendliness probe (paper §VI)")
    probe.add_argument("family", choices=["real", "wmp"])
    probe.add_argument("kbps", type=float)
    probe.add_argument("loss", type=float, help="loss fraction, e.g. 0.05")
    probe.add_argument("--rtt", type=float, default=0.200)
    probe.add_argument("--duration", type=float, default=30.0)
    probe.add_argument("--scaling", action="store_true",
                       help="enable media scaling with receiver reports")

    boundary = commands.add_parser(
        "boundary", help="multi-client egress study (paper §VI)")
    boundary.add_argument("--clients", type=int, default=4)
    boundary.add_argument("--duration", type=float, default=40.0)
    boundary.add_argument("--kbps", type=float, default=150.0)
    boundary.add_argument("--seed", type=int, default=2002)

    scorecard = commands.add_parser(
        "scorecard", help="check every paper claim; nonzero on failure "
                          "(--modern: then-vs-now transport comparison)")
    scorecard.add_argument("--seed", type=int, default=2002)
    scorecard.add_argument("--scale", type=float, default=1.0)
    scorecard.add_argument("--modern", action="store_true",
                           help="compare the 2002 transports against "
                                "AIMD / delay-gradient congestion "
                                "control and the ABR ladder")
    scorecard.add_argument("--jobs", type=int, default=1,
                           help="worker processes per transport study "
                                "(--modern only; 0 = one per CPU)")
    scorecard.add_argument("--transports", default=None,
                           help="comma-separated transport subset for "
                                "--modern (default: 2002,aimd,gcc,abr)")
    scorecard.add_argument("--svg", default=None,
                           help="write the --modern per-set delivered-"
                                "rate chart as SVG")

    telemetry = commands.add_parser(
        "telemetry", help="run the Table 1 sweep with telemetry enabled "
                          "and summarize/export what it saw")
    telemetry.add_argument("--seed", type=int, default=2002)
    telemetry.add_argument("--scale", type=float, default=1.0,
                           help="clip duration scale (use <1 for a fast run)")
    telemetry.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the sweep (0 = one "
                                "per CPU); merged telemetry is identical "
                                "to a sequential run's")
    telemetry.add_argument("--json",
                           help="write the deterministic JSON summary")
    telemetry.add_argument("--events",
                           help="write the trace-event stream as JSON lines")
    telemetry.add_argument("--series-csv",
                           help="write gauge time series (queue depth, "
                                "buffer occupancy) as CSV")
    telemetry.add_argument("--profile", action="store_true",
                           help="also profile the event loop (wall-clock "
                                "numbers; excluded from exports)")
    telemetry.add_argument("--top", type=int, default=12,
                           help="rows shown per summary section")
    telemetry.add_argument("--ring-capacity", type=int, default=None,
                           help="memory-ring capacity in events "
                                "(default 262144; 0 = unbounded); a "
                                "dropped=N warning prints if the ring "
                                "overflows")

    spans = commands.add_parser(
        "spans", help="run the sweep with span tracing; print per-hop "
                      "waterfalls and the latency-attribution table")
    spans.add_argument("--seed", type=int, default=2002)
    spans.add_argument("--scale", type=float, default=1.0,
                       help="clip duration scale (use <1 for a fast run)")
    spans.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (0 = one per "
                            "CPU); the merged span forest is identical "
                            "to a sequential run's")
    spans.add_argument("--top", type=int, default=5,
                       help="slowest ADUs rendered as waterfalls")
    spans.add_argument("--json",
                       help="write the attribution summary as JSON")
    spans.add_argument("--chrome-trace",
                       help="write the span forest as Chrome trace-event "
                            "JSON (load in Perfetto or chrome://tracing)")
    spans.add_argument("--jsonl",
                       help="write the span forest as JSON lines")

    faults = commands.add_parser(
        "faults", help="run one pair experiment under a fault scenario "
                       "and print the recovery report")
    faults.add_argument("scenario", nargs="?", default="link-flap",
                        help="scenario name (see --list); "
                             "default: link-flap")
    faults.add_argument("--list", action="store_true",
                        dest="list_scenarios",
                        help="list the known scenarios and exit")
    faults.add_argument("--seed", type=int, default=2002)
    faults.add_argument("--scale", type=float, default=0.25,
                        help="clip duration scale (default 0.25: the "
                             "scenario's event times scale with it)")
    faults.add_argument("--events",
                        help="write the run's trace-event stream as "
                             "JSON lines")
    faults.add_argument("--repair", action="store_true",
                        help="also arm the default loss-repair stack; "
                             "the report gains a loss-repair line")

    cc = commands.add_parser(
        "cc", help="run one clip set under a congestion controller and "
                   "print its state summary")
    cc.add_argument("controller", nargs="?", default=None,
                    help="controller name (see --list)")
    cc.add_argument("--list", action="store_true",
                    dest="list_controllers",
                    help="list the known controllers and exit")
    cc.add_argument("--seed", type=int, default=2002)
    cc.add_argument("--scale", type=float, default=0.12,
                    help="clip duration scale (default 0.12: one short "
                         "set is enough to watch a controller move)")
    cc.add_argument("--set", type=int, default=3, dest="set_number",
                    help="Table 1 clip set to stream (default 3)")

    repair = commands.add_parser(
        "repair", help="run one clip set with the loss-repair stack "
                       "armed and print the repair/QoE report")
    repair.add_argument("--seed", type=int, default=2002)
    repair.add_argument("--scale", type=float, default=0.12,
                        help="clip duration scale (default 0.12: one "
                             "short set is enough to watch repair work)")
    repair.add_argument("--set", type=int, default=3, dest="set_number",
                        help="Table 1 clip set to stream (default 3)")
    repair.add_argument("--faults", default="burst-loss",
                        dest="fault_scenario",
                        help="fault scenario driving the loss (see "
                             "`repro faults --list`; default burst-loss; "
                             "'none' for a clean run)")
    repair.add_argument("--fec-group", type=int, default=8,
                        help="media datagrams per XOR parity group "
                             "(0 disables FEC; default 8)")
    repair.add_argument("--no-nack", action="store_true",
                        help="disable the NACK/retransmission loop "
                             "(parity-only repair)")
    repair.add_argument("--json",
                        help="write the repair/QoE summary as JSON")

    validate = commands.add_parser(
        "validate", help="check a seeded study against the runtime "
                         "invariant catalog; nonzero on any violation")
    validate.add_argument("--seed", type=int, default=2002)
    validate.add_argument("--scale", type=float, default=0.25,
                          help="clip duration scale (default 0.25: the "
                               "invariants hold at any scale)")
    validate.add_argument("--set", type=int, default=None, dest="set_number",
                          help="restrict to one Table 1 clip set "
                               "(default: the full sweep)")
    validate.add_argument("--faults", default=None, dest="fault_scenario",
                          help="also arm a named fault scenario "
                               "(see `repro faults --list`)")
    validate.add_argument("--study", action="store_true",
                          dest="differential",
                          help="differential oracle: run the study "
                               "sequentially, in parallel, and through "
                               "the disk cache, and diff every surface")
    validate.add_argument("--jobs", type=int, default=2,
                          help="worker processes for the parallel leg "
                               "of --study (default 2)")
    validate.add_argument("--golden", action="store_true",
                          help="re-run the pinned golden scenarios and "
                               "diff their digests")
    validate.add_argument("--cc", default=None, dest="cc_kind",
                          help="arm a congestion controller "
                               "(see `repro cc --list`)")
    validate.add_argument("--abr", action="store_true",
                          help="run on the ABR segment-ladder transport")
    validate.add_argument("--repair", action="store_true",
                          help="arm the default loss-repair stack")
    validate.add_argument("--fast-path", nargs="?", const="on",
                          choices=["on", "strict"], default=None,
                          dest="fast_path",
                          help="arm the flow-level fast path so the "
                               "fastpath-equivalence invariant refolds "
                               "its train ledger")

    watch = commands.add_parser(
        "watch", help="flag anomalies in a streamed study's per-run "
                      "records; nonzero exit when a rule trips")
    watch.add_argument("path",
                       help="JSON-lines file from `repro study "
                            "--stream-jsonl`")
    watch.add_argument("--metric", default=None, dest="metrics",
                       help="comma-separated metrics to watch "
                            "(default: rebuffer_ratio,loss_rate)")
    watch.add_argument("--z", type=float, default=3.0,
                       help="z-score threshold against the rolling "
                            "baseline (default 3.0)")
    watch.add_argument("--window", type=int, default=8,
                       help="rolling-baseline window in runs (default 8)")
    watch.add_argument("--min-baseline", type=int, default=3,
                       help="runs required before a rule may trip "
                            "(default 3)")
    watch.add_argument("--min-delta", type=float, default=0.02,
                       help="absolute deviation floor so flat baselines "
                            "never page on numeric dust (default 0.02)")
    watch.add_argument("--follow", action="store_true",
                       help="keep tailing the file for appended records")
    watch.add_argument("--idle-timeout", type=float, default=5.0,
                       help="with --follow: stop after this many "
                            "seconds without new records (default 5)")

    cache = commands.add_parser(
        "cache", help="inspect or clear the persistent study cache")
    cache.add_argument("action", choices=["info", "clear"], nargs="?",
                       default="info")

    pool = commands.add_parser(
        "pool", help="inspect or stop the persistent study worker pool")
    pool.add_argument("action", choices=["info", "shutdown"], nargs="?",
                      default="info")

    commands.add_parser("table1", help="print Table 1 (no simulation)")

    generate = commands.add_parser(
        "generate", help="synthesize a Section IV flow")
    generate.add_argument("family", choices=["real", "wmp"])
    generate.add_argument("kbps", type=float)
    generate.add_argument("duration", type=float)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--pcap", help="write the flow as libpcap")
    generate.add_argument("--csv", help="write the flow as trace CSV")

    pcap_info = commands.add_parser(
        "pcap-info", help="summarize a libpcap file")
    pcap_info.add_argument("path")

    return parser


def _usage_error(message: str) -> int:
    """Report a bad argument on stderr; exit status 2, like argparse."""
    print(message, file=sys.stderr)
    return 2


def _check_sweep_args(args: argparse.Namespace) -> Optional[int]:
    """Shared ``--scale`` / ``--jobs`` sanity for the sweep commands."""
    if args.scale <= 0:
        return _usage_error(f"--scale must be positive, got {args.scale}")
    if getattr(args, "jobs", 0) < 0:
        return _usage_error(f"--jobs must be >= 0, got {args.jobs}")
    return None


def _cmd_study(args: argparse.Namespace) -> int:
    import json as json_module
    import resource
    import time

    from repro.experiments.report import build_report
    from repro.experiments.runner import run_study

    bad = _check_sweep_args(args)
    if bad is not None:
        return bad
    fast_path = None
    if args.fast_path is not None:
        from repro.netsim.flowlevel import FlowLevelConfig

        fast_path = FlowLevelConfig(strict=(args.fast_path == "strict"))
    record_stream = None
    if args.stream_jsonl:
        try:
            record_stream = open(args.stream_jsonl, "w")
        except OSError as exc:
            return _usage_error(f"cannot write {args.stream_jsonl}: {exc}")
    callbacks = []
    renderer = None
    if args.progress:
        from repro.experiments.progress import ProgressRenderer

        renderer = ProgressRenderer(
            stream=sys.stderr,
            cache_note="off" if args.no_cache else "cold")
        callbacks.append(renderer)
    if record_stream is not None:
        from repro.experiments.progress import PHASE_DONE

        # Parallel workers finish out of order; hold records until every
        # earlier run has been written so the tap is byte-identical to a
        # sequential sweep (and `repro watch` baselines stay ordered).
        held = {}
        next_record = [0]

        def write_record(beat) -> None:
            if beat.phase != PHASE_DONE or beat.rollup is None:
                return
            record = {"index": beat.index, "label": beat.label,
                      "events_folded": beat.events_folded,
                      "violations": beat.violations}
            record.update(beat.rollup)
            held[beat.index] = record
            while next_record[0] in held:
                record_stream.write(json_module.dumps(
                    held.pop(next_record[0]), sort_keys=True) + "\n")
                next_record[0] += 1
            record_stream.flush()

        callbacks.append(write_record)
    progress = None
    if callbacks:
        def progress(beat) -> None:
            for callback in callbacks:
                callback(beat)
    streaming = bool(args.progress or args.stream_jsonl)
    started = time.perf_counter()
    try:
        if args.no_cache or args.stream_jsonl:
            # --stream-jsonl implies a fresh simulation: per-run records
            # cannot be replayed out of a cached sweep.
            stream = None
            if streaming:
                from repro.telemetry.streaming import StreamingSummary

                stream = StreamingSummary()
            study = run_study(seed=args.seed, duration_scale=args.scale,
                              jobs=args.jobs, stream=stream,
                              fast_path=fast_path, progress=progress)
            source = ("cache off" if args.no_cache
                      else "cache bypassed (--stream-jsonl)")
        else:
            from repro.experiments.cache import load_or_run_study

            study, origin = load_or_run_study(seed=args.seed,
                                              duration_scale=args.scale,
                                              jobs=args.jobs,
                                              stream=streaming,
                                              fast_path=fast_path,
                                              progress=progress)
            source = ("disk cache hit" if origin == "disk"
                      else "memory cache hit" if origin == "memory"
                      else "cache miss")
    finally:
        if renderer is not None:
            renderer.close()
        if record_stream is not None:
            record_stream.close()
    elapsed = time.perf_counter() - started
    jobs_note = f", jobs {args.jobs}" if args.jobs != 1 else ""
    # Cached studies were not executed now; only a fresh simulation's
    # sequential/parallel/auto-downgrade decision is worth reporting.
    ran_now = source in ("cache off", "cache miss",
                         "cache bypassed (--stream-jsonl)")
    exec_note = f", {study.execution}" if ran_now else ""
    if ran_now and study.execution.startswith("parallel"):
        from repro.experiments.parallel import pool_info

        info = pool_info()
        if info["workers"]:
            state = "warm" if info["studies"] > 1 else "cold"
            exec_note += (f", pool {state} "
                          f"({info['workers']} workers)")
    fast_note = f", fast-path {args.fast_path}" if fast_path else ""
    # ru_maxrss is KiB on Linux: the process-lifetime high-water mark,
    # which is exactly the number the bounded-memory claim is about.
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(f"# study sweep: {len(study)} pair runs in {elapsed:.2f}s "
          f"(seed {args.seed}, scale {args.scale}{jobs_note}{exec_note}"
          f"{fast_note}, {source}, peak rss {peak_kib / 1024:.0f} MiB)\n")
    if fast_path is not None and ran_now:
        fast = sum(r.fastpath.packets_fast for r in study.runs
                   if r.fastpath is not None)
        fell = sum(r.fastpath.packets_fallback for r in study.runs
                   if r.fastpath is not None)
        total = fast + fell
        if total:
            print(f"# fast path: {fast} of {total} packets delivered "
                  f"analytically ({100.0 * fast / total:.1f}%)\n")
    if study.streaming is not None:
        summary = study.streaming
        print(f"# streamed: {summary.events_folded} events folded into "
              f"a bounded summary (fingerprint {summary.fingerprint()})\n")
    if args.stream_jsonl:
        print(f"wrote {args.stream_jsonl}")
    print(build_report(study, plots=args.plots))
    if args.html:
        from repro.experiments.html_report import build_html_report

        with open(args.html, "w") as stream:
            stream.write(build_html_report(study))
        print(f"wrote {args.html}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.runner import run_study

    generator = ALL_FIGURES.get(args.figure_id)
    if generator is None:
        print(f"unknown figure {args.figure_id!r}; choose from: "
              f"{', '.join(sorted(ALL_FIGURES))}", file=sys.stderr)
        return 2
    if args.scale <= 0:
        return _usage_error(f"--scale must be positive, got {args.scale}")
    study = run_study(seed=args.seed, duration_scale=args.scale)
    result = generator(study)
    print(result.render(plot=args.plots))
    if args.csv:
        with open(args.csv, "w") as stream:
            stream.write(result.to_csv())
        print(f"wrote {args.csv}")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.experiments.tcp_friendly import run_probe
    from repro.media.clip import PlayerFamily

    if args.kbps <= 0:
        return _usage_error(f"kbps must be positive, got {args.kbps}")
    if not 0.0 <= args.loss <= 1.0:
        return _usage_error(
            f"loss must be a fraction in [0, 1], got {args.loss}")
    if args.rtt <= 0:
        return _usage_error(f"--rtt must be positive, got {args.rtt}")
    if args.duration <= 0:
        return _usage_error(
            f"--duration must be positive, got {args.duration}")
    family = (PlayerFamily.REAL if args.family == "real"
              else PlayerFamily.WMP)
    result = run_probe(family, args.kbps, loss_probability=args.loss,
                       duration=args.duration, rtt=args.rtt,
                       scaling=args.scaling)
    print(f"{family.display_name} {args.kbps:.0f} Kbps, "
          f"loss {args.loss * 100:.0f}%, RTT {args.rtt * 1000:.0f} ms, "
          f"scaling {'on' if args.scaling else 'off'}:")
    print(f"  offered load:       {result.offered_kbps:8.1f} Kbps")
    print(f"  delivered goodput:  {result.achieved_kbps:8.1f} Kbps")
    if result.tcp_friendly_kbps != float("inf"):
        print(f"  TCP-friendly bound: {result.tcp_friendly_kbps:8.1f} "
              "Kbps")
    print(f"  friendliness index: {result.friendliness_index:8.2f} "
          "(> 1 = unfriendly)")
    if args.scaling:
        print(f"  final rate scale:   {result.final_rate_scale:8.2f}")
    return 0


def _cmd_boundary(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.core.turbulence import TurbulenceProfile
    from repro.experiments.aggregate import run_boundary_study

    if args.clients <= 0:
        return _usage_error(f"--clients must be positive, got {args.clients}")
    if args.duration <= 0:
        return _usage_error(
            f"--duration must be positive, got {args.duration}")
    if args.kbps <= 0:
        return _usage_error(f"--kbps must be positive, got {args.kbps}")
    result = run_boundary_study(client_count=args.clients,
                                duration=args.duration,
                                encoded_kbps=args.kbps, seed=args.seed)
    print(format_table(TurbulenceProfile.SUMMARY_HEADERS,
                       [p.summary_row()
                        for p in result.per_flow_profiles]))
    print(f"aggregate {result.aggregate_kbps:.0f} Kbps while all flows "
          f"active; CV {result.common_window_cv:.2f} -> "
          f"{result.full_span_cv:.2f} over the full span "
          f"(cliff factor {result.cliff_factor:.1f})")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.experiments.datasets import table1_rows

    print(format_table(("Data Set", "Pair", "Encode (Kbps)", "Genre",
                        "Length"), table1_rows()))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.capture.pcap import write_pcap
    from repro.capture.serialize import write_csv
    from repro.core.fitting import fit_profile
    from repro.core.generator import generate_flow
    from repro.core.turbulence import TurbulenceProfile
    from repro.analysis.report import format_table
    from repro.media.clip import PlayerFamily

    if args.kbps <= 0:
        return _usage_error(f"kbps must be positive, got {args.kbps}")
    if args.duration <= 0:
        return _usage_error(
            f"duration must be positive, got {args.duration}")
    family = (PlayerFamily.REAL if args.family == "real"
              else PlayerFamily.WMP)
    flow = generate_flow(family, args.kbps, args.duration, seed=args.seed)
    trace = flow.to_trace()
    profile = fit_profile(trace, args.kbps,
                          label=f"{args.family} {args.kbps:.0f}K")
    print(f"generated {flow.packet_count} packets "
          f"({flow.total_wire_bytes / 1024:.0f} KiB) over "
          f"{flow.streaming_duration:.1f}s")
    print(format_table(TurbulenceProfile.SUMMARY_HEADERS,
                       [profile.summary_row()]))
    if args.pcap:
        write_pcap(trace, args.pcap)
        print(f"wrote {args.pcap}")
    if args.csv:
        write_csv(trace, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_pcap_info(args: argparse.Namespace) -> int:
    from repro.capture.pcap import read_pcap
    from repro.capture.reassembly import fragmentation_percent
    from repro.errors import ReproError

    try:
        trace = read_pcap(args.path)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.path}: {len(trace)} packets, "
          f"{trace.total_wire_bytes / 1024:.0f} KiB, "
          f"{trace.duration:.1f}s")
    if len(trace) > 0:
        print(f"fragmentation: {fragmentation_percent(trace):.1f}%")
    if trace.duration > 0:
        print(f"average rate: {trace.average_rate_bps() / 1000:.0f} Kbps")
    for src, dst, count in trace.conversations()[:10]:
        print(f"  {src} -> {dst}: {count} packets")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_study
    from repro.experiments.scorecard import render_scorecard, run_scorecard

    bad = _check_sweep_args(args)
    if bad is not None:
        return bad
    if args.modern:
        from repro.errors import ExperimentError
        from repro.experiments.modern import (
            render_modern_scorecard,
            run_modern_scorecard,
            scorecard_svg,
        )

        transports = (tuple(name.strip()
                            for name in args.transports.split(",")
                            if name.strip())
                      if args.transports else None)
        try:
            card = run_modern_scorecard(seed=args.seed,
                                        duration_scale=args.scale,
                                        jobs=args.jobs,
                                        transports=transports)
        except ExperimentError as exc:
            return _usage_error(f"error: {exc}")
        print(render_modern_scorecard(card))
        if args.svg:
            with open(args.svg, "w") as stream:
                stream.write(scorecard_svg(card))
            print(f"wrote {args.svg}")
        return 0
    study = run_study(seed=args.seed, duration_scale=args.scale)
    results = run_scorecard(study)
    print(render_scorecard(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_cc(args: argparse.Namespace) -> int:
    from repro.cc.base import CcConfig, cc_descriptions
    from repro.errors import ReproError
    from repro.experiments.datasets import build_table1_library
    from repro.experiments.runner import run_study
    from repro.media.library import ClipLibrary
    from repro.telemetry import MemorySink, Telemetry
    from repro.telemetry.events import CC_STATE

    if args.list_controllers:
        for name, description in sorted(cc_descriptions().items()):
            print(f"{name:<8} {description}")
        return 0
    if args.controller is None:
        return _usage_error(
            "a controller name is required (or --list to see them)")
    try:
        config = CcConfig(kind=args.controller)
    except ReproError as exc:
        return _usage_error(f"error: {exc}")
    if args.scale <= 0:
        return _usage_error(f"--scale must be positive, got {args.scale}")

    full = build_table1_library(duration_scale=args.scale)
    try:
        clip_set = full.get_set(args.set_number)
    except ReproError as exc:
        return _usage_error(f"error: {exc}")
    library = ClipLibrary()
    library.add_set(clip_set)
    telemetry = Telemetry(sinks=[MemorySink()])
    study = run_study(library=library, seed=args.seed,
                      telemetry=telemetry, cc=config)
    samples = [event for event in telemetry.memory_events()
               if event.type == CC_STATE]
    telemetry.close()
    if not samples:
        print(f"error: controller {config.kind!r} recorded no cc_state "
              "samples (the null controller arms nothing); nothing to "
              "summarize", file=sys.stderr)
        return 1
    print(f"# cc {config.kind}: {len(study)} pair runs, "
          f"{len(samples)} state samples (seed {args.seed}, "
          f"scale {args.scale}, set {args.set_number}, "
          f"fingerprint {config.fingerprint()})\n")
    by_flow = {}
    for event in samples:
        record = event.field_dict()
        key = f"{record['controller']}/{record['family']}"
        by_flow.setdefault(key, []).append(record)
    for name in sorted(by_flow):
        records = by_flow[name]
        rates = [record["rate_bps"] for record in records
                 if record["rate_bps"] >= 0]
        last = records[-1]
        line = f"  {name}: {len(records)} samples"
        if rates:
            line += (f", rate {min(rates) / 1000:.0f}-"
                     f"{max(rates) / 1000:.0f} Kbps "
                     f"(last {last['rate_bps'] / 1000:.0f})")
        if last["cwnd_bytes"] >= 0:
            line += f", cwnd {last['cwnd_bytes']:.0f} B"
        print(line)
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.experiments.runner import run_study
    from repro.telemetry import (
        JsonlSink,
        MemorySink,
        SimProfiler,
        Telemetry,
        rebuffer_timeline,
        series_csv,
        to_json,
    )
    from repro.telemetry.registry import format_labels

    if args.top <= 0:
        print(f"--top must be a positive integer, got {args.top}",
              file=sys.stderr)
        return 2
    bad = _check_sweep_args(args)
    if bad is not None:
        return bad
    if args.ring_capacity is not None and args.ring_capacity < 0:
        return _usage_error(f"--ring-capacity must be >= 0, "
                            f"got {args.ring_capacity}")
    if args.ring_capacity is None:
        sinks = [MemorySink()]
    else:
        # 0 = unbounded, matching MemorySink(capacity=None).
        sinks = [MemorySink(capacity=args.ring_capacity or None)]
    if args.events:
        sinks.append(JsonlSink(args.events))
    profiler = SimProfiler() if args.profile else None
    telemetry = Telemetry(sinks=sinks, profiler=profiler)
    study = run_study(seed=args.seed, duration_scale=args.scale,
                      telemetry=telemetry, jobs=args.jobs)
    registry = telemetry.registry
    if not list(registry.counters()) and not telemetry.memory_events():
        print("error: the run recorded no telemetry (no counters, no "
              "trace events); nothing to summarize", file=sys.stderr)
        telemetry.close()
        return 1
    print(f"# telemetry: {len(study)} pair runs "
          f"(seed {args.seed}, scale {args.scale})\n")

    counters = sorted(registry.counters(), key=lambda item: -item[2].value)
    print("## counters (top by value)\n")
    print(format_table(("Counter", "Labels", "Value"),
                       [(name, format_labels(labels), str(counter.value))
                        for name, labels, counter in counters[:args.top]]))

    queue_gauges = sorted(
        ((labels, gauge) for name, labels, gauge in registry.gauges()
         if name == "queue.bytes"),
        key=lambda item: -item[1].peak)
    if queue_gauges:
        print("\n## per-hop queue depth (top by peak bytes)\n")
        print(format_table(
            ("Queue", "Peak B", "Last B", "Samples"),
            [(format_labels(labels), f"{gauge.peak:.0f}",
              f"{gauge.value:.0f}", str(len(gauge.series)))
             for labels, gauge in queue_gauges[:args.top]]))

    histograms = list(registry.histograms())
    if histograms:
        print("\n## histograms\n")
        print(format_table(
            ("Histogram", "Labels", "Count", "Mean", "Max"),
            [(name, format_labels(labels), str(h.count),
              f"{h.mean:.4g}", f"{h.max:.4g}" if h.max is not None else "-")
             for name, labels, h in histograms[:args.top]]))

    events = telemetry.memory_events()
    by_type = {}
    for event in events:
        by_type[event.type] = by_type.get(event.type, 0) + 1
    print(f"\n## trace events ({len(events)} retained)\n")
    print(format_table(("Event", "Count"),
                       [(etype, str(count))
                        for etype, count in sorted(by_type.items())]))

    timelines = rebuffer_timeline(events)
    if timelines:
        print("\n## playout / rebuffer timelines\n")
        for player, entries in sorted(timelines.items()):
            rendered = ", ".join(f"{etype}@{time:.2f}s"
                                 for etype, time in entries)
            print(f"  {player}: {rendered}")

    if profiler is not None:
        print("\n## event-loop profile (wall clock; not exported)\n")
        print(profiler.report.render())

    if args.json:
        with open(args.json, "w") as stream:
            stream.write(to_json(telemetry))
        print(f"\nwrote {args.json}")
    if args.series_csv:
        with open(args.series_csv, "w") as stream:
            stream.write(series_csv(registry))
        print(f"wrote {args.series_csv}")
    dropped = telemetry.dropped_events()
    if dropped:
        print(f"warning: memory ring dropped={dropped} events; the "
              f"oldest events are missing from every view above "
              f"(raise --ring-capacity, or pass 0 for unbounded)",
              file=sys.stderr)
    telemetry.close()
    if args.events:
        print(f"wrote {args.events}")
    return 0


def _seconds(value: float) -> str:
    return f"{value:.6f}s"


def _render_waterfall(latency, width: int = 44) -> str:
    """One ADU's journey as offset/duration rows with an ASCII bar."""
    run = f" run={latency.run}" if latency.run else ""
    lines = [f"adu#{latency.sequence} [{latency.family}]{run}  "
             f"total {_seconds(latency.total)}, "
             f"{latency.fragment_count} packet(s)"]
    stages = []
    offset = 0.0
    for hop in latency.hops:
        for stage, duration in (("queue", hop.queue), ("tx", hop.tx),
                                ("prop", hop.prop)):
            stages.append((f"{stage} {hop.link}", offset, duration))
            offset += duration
    stages.append(("reassembly wait", offset, latency.reassembly_wait))
    offset += latency.reassembly_wait
    stages.append(("buffer wait", offset, latency.buffer_wait))
    total = latency.total or 1.0
    name_width = max(len(name) for name, _, _ in stages)
    for name, start, duration in stages:
        begin = int(round(width * start / total))
        bar_width = (max(1, int(round(width * duration / total)))
                     if duration > 0 else 0)
        bar = (" " * begin + "#" * bar_width)[:width]
        lines.append(f"  {name:<{name_width}}  +{_seconds(start)}  "
                     f"{_seconds(duration)}  |{bar:<{width}}|")
    return "\n".join(lines) + "\n"


def _cmd_spans(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import format_table
    from repro.experiments.runner import run_study
    from repro.telemetry import (
        SpanRecorder,
        Telemetry,
        aggregate_attribution,
        attribute_latency,
        attribution_dict,
        slowest,
        write_chrome_trace,
        write_spans_jsonl,
    )
    from repro.telemetry.critical_path import COMPONENT_NAMES

    if args.top <= 0:
        print(f"--top must be a positive integer, got {args.top}",
              file=sys.stderr)
        return 2
    bad = _check_sweep_args(args)
    if bad is not None:
        return bad
    recorder = SpanRecorder()
    telemetry = Telemetry(spans=recorder)
    study = run_study(seed=args.seed, duration_scale=args.scale,
                      telemetry=telemetry, jobs=args.jobs)
    latencies = attribute_latency(recorder)
    if not latencies:
        print("error: the run recorded no completed ADU traces; nothing "
              "to attribute", file=sys.stderr)
        return 1
    print(f"# spans: {len(recorder)} spans, {len(recorder.roots())} ADU "
          f"traces, {len(latencies)} attributed "
          f"({len(study)} pair runs, seed {args.seed}, "
          f"scale {args.scale})\n")

    aggregate = aggregate_attribution(latencies)
    families = sorted(aggregate)
    rows = [("ADUs attributed",)
            + tuple(str(int(aggregate[f]["count"])) for f in families),
            ("mean packets/ADU",)
            + tuple(f"{aggregate[f]['mean_fragments']:.2f}"
                    for f in families),
            ("mean end-to-end",)
            + tuple(_seconds(aggregate[f]["mean_total"])
                    for f in families)]
    for name in COMPONENT_NAMES:
        rows.append(
            (name.replace("_", " "),)
            + tuple(f"{_seconds(aggregate[f]['mean_' + name])} "
                    f"({aggregate[f]['share_' + name]:.2f}%)"
                    for f in families))
    print("## latency attribution (per-family means)\n")
    print(format_table(("Component",) + tuple(families), rows))

    print(f"\n## slowest ADUs (top {args.top})\n")
    for latency in slowest(latencies, args.top):
        print(_render_waterfall(latency))

    if args.json:
        document = attribution_dict(latencies, top=args.top)
        with open(args.json, "w") as stream:
            stream.write(json.dumps(document, sort_keys=True, indent=2))
        print(f"wrote {args.json}")
    if args.chrome_trace:
        write_chrome_trace(recorder, args.chrome_trace)
        print(f"wrote {args.chrome_trace}")
    if args.jsonl:
        write_spans_jsonl(recorder, args.jsonl)
        print(f"wrote {args.jsonl}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.experiments.datasets import build_table1_library
    from repro.experiments.runner import run_pair_experiment, study_conditions
    from repro.faults import build_scenario, recovery_report, scenario_names
    from repro.telemetry import JsonlSink, MemorySink, Telemetry

    if args.list_scenarios:
        from repro.faults.scenario import SCENARIO_BUILDERS

        for name in scenario_names():
            builder = SCENARIO_BUILDERS[name]
            description = build_scenario(name, args.seed).description
            print(f"{name:<18} {description}")
        return 0
    try:
        scenario = build_scenario(args.scenario, args.seed)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.scale <= 0:
        print(f"--scale must be positive, got {args.scale}",
              file=sys.stderr)
        return 2

    library = build_table1_library(duration_scale=args.scale)
    clip_set, pair = library.all_pairs()[0]
    conditions = study_conditions(args.seed, 0)
    sinks = [MemorySink()]
    if args.events:
        sinks.append(JsonlSink(args.events))
    repair = None
    if args.repair:
        from repro.repair import RepairConfig

        repair = RepairConfig()
    telemetry = Telemetry(sinks=sinks)
    result = run_pair_experiment(clip_set, pair, seed=args.seed,
                                 conditions=conditions,
                                 telemetry=telemetry, scenario=scenario,
                                 repair=repair)
    report = recovery_report(telemetry.memory_events(),
                             scenario=scenario.name)
    telemetry.close()
    print(f"# fault run: set {clip_set.number} {pair.band.value} "
          f"(seed {args.seed}, scale {args.scale}, "
          f"{conditions.describe()})\n")
    print(report.render())
    def _eos(value):
        return "never" if value is None else f"{value:.3f}s"

    print(f"\nstream outcomes: real eos_at={_eos(result.real_stats.eos_at)},"
          f" wmp eos_at={_eos(result.wmp_stats.eos_at)}")
    if args.events:
        print(f"wrote {args.events}")
    if not report.faults:
        print("error: the scenario injected no faults (nothing "
              "executed before the run ended)", file=sys.stderr)
        return 1
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.errors import ReproError
    from repro.experiments.datasets import build_table1_library
    from repro.experiments.runner import run_study
    from repro.faults import build_scenario
    from repro.media.library import ClipLibrary
    from repro.repair import RepairConfig
    from repro.telemetry import MemorySink, Telemetry
    from repro.telemetry.streaming import StreamingSummary

    if args.scale <= 0:
        return _usage_error(f"--scale must be positive, got {args.scale}")
    try:
        config = RepairConfig(fec_group=args.fec_group,
                              nack=not args.no_nack)
    except ReproError as exc:
        return _usage_error(f"error: {exc}")
    if config.is_null:
        return _usage_error(
            "error: --fec-group 0 with --no-nack arms no repair "
            "mechanism at all; nothing to report")
    scenario = None
    if args.fault_scenario != "none":
        try:
            scenario = build_scenario(args.fault_scenario, args.seed)
        except ReproError as exc:
            return _usage_error(f"error: {exc}")

    full = build_table1_library(duration_scale=args.scale)
    try:
        clip_set = full.get_set(args.set_number)
    except ReproError as exc:
        return _usage_error(f"error: {exc}")
    library = ClipLibrary()
    library.add_set(clip_set)
    telemetry = Telemetry(sinks=[MemorySink(capacity=None)])
    stream = StreamingSummary()
    study = run_study(library=library, seed=args.seed,
                      telemetry=telemetry, scenario=scenario,
                      repair=config, stream=stream)
    telemetry.close()

    fault_note = (args.fault_scenario if scenario is not None
                  else "no faults")
    print(f"# repair: {len(study)} pair runs (seed {args.seed}, "
          f"scale {args.scale}, set {args.set_number}, {fault_note}, "
          f"fingerprint {config.fingerprint()})\n")
    section = stream.rollup.as_dict().get("repair")
    if section is None:
        print("no repair activity (nothing sent, nothing lost)")
    else:
        qoe = section.pop("qoe")
        for key in sorted(section):
            print(f"  {key:<26} {section[key]}")
        print(f"  {'qoe mean/min/max':<26} {qoe['mean']}"
              f" / {qoe['min']} / {qoe['max']}")
    print("\nper-viewer QoE:")
    payload = {"repair": section, "runs": []}
    for run in study:
        for name, stats in (("real", run.real_stats),
                            ("wmp", run.wmp_stats)):
            score = stats.qoe()
            print(f"  {run.label}/{name}: score {score.score:.2f} "
                  f"(startup {score.startup_delay:.2f}s, rebuffer "
                  f"{100 * score.rebuffer_ratio:.1f}%, frames "
                  f"{100 * score.frame_delivery:.1f}%, repaired "
                  f"{100 * score.repair_ratio:.1f}% — lost "
                  f"{stats.packets_lost}, recovered "
                  f"{stats.packets_recovered})")
            payload["runs"].append(
                {"run": run.label, "player": name,
                 "packets_lost": stats.packets_lost,
                 "packets_recovered": stats.packets_recovered,
                 "qoe": score.as_dict()})
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.cc.abr import AbrConfig
    from repro.cc.base import CcConfig
    from repro.errors import ReproError
    from repro.experiments.datasets import build_table1_library
    from repro.experiments.runner import run_study
    from repro.faults import build_scenario
    from repro.media.library import ClipLibrary
    from repro.validate import (
        GOLDEN_SCENARIOS,
        RunValidator,
        check_golden,
        run_differential,
    )

    if args.scale <= 0:
        return _usage_error(f"--scale must be positive, got {args.scale}")
    if args.jobs < 0:
        return _usage_error(f"--jobs must be >= 0, got {args.jobs}")

    if args.golden:
        failures = 0
        for name in sorted(GOLDEN_SCENARIOS):
            mismatches = check_golden(GOLDEN_SCENARIOS[name])
            if mismatches:
                failures += 1
                print(f"golden {name}: {len(mismatches)} mismatch"
                      f"{'es' if len(mismatches) != 1 else ''}")
                for entry in mismatches:
                    print(f"  ! {entry}")
            else:
                print(f"golden {name}: ok")
        return 1 if failures else 0

    library = None
    if args.set_number is not None:
        full = build_table1_library(duration_scale=args.scale)
        try:
            clip_set = full.get_set(args.set_number)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        library = ClipLibrary()
        library.add_set(clip_set)

    scenario = None
    if args.fault_scenario is not None:
        try:
            scenario = build_scenario(args.fault_scenario, args.seed)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    cc = None
    if args.cc_kind is not None:
        try:
            cc = CcConfig(kind=args.cc_kind)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    abr = AbrConfig() if args.abr else None
    repair = None
    if args.repair:
        from repro.repair import RepairConfig

        repair = RepairConfig()
    fast_path = None
    if args.fast_path is not None:
        if args.abr:
            return _usage_error(
                "error: --fast-path and --abr are mutually exclusive")
        if args.repair:
            return _usage_error(
                "error: --fast-path requires no repair stack "
                "(drop --repair)")
        from repro.netsim.flowlevel import FlowLevelConfig

        fast_path = FlowLevelConfig(strict=(args.fast_path == "strict"))

    if args.differential:
        report = run_differential(seed=args.seed,
                                  duration_scale=args.scale,
                                  jobs=args.jobs, library=library,
                                  scenario=scenario, cc=cc, abr=abr,
                                  repair=repair)
        print(f"# differential oracle (seed {args.seed}, "
              f"scale {args.scale})\n")
        print(report.summary())
        return 0 if report.ok else 1

    validator = RunValidator(raise_on_violation=False)
    # Arm full telemetry (unbounded ring) plus an online streaming
    # summary so the stream-equivalence invariant has both sides to
    # compare: the per-run fold and the buffered events it must match.
    from repro.telemetry import MemorySink, Telemetry
    from repro.telemetry.streaming import StreamingSummary

    telemetry = Telemetry(sinks=[MemorySink(capacity=None)])
    stream = StreamingSummary()
    # build_table1_library already applied the scale when --set was
    # given; run_study applies it itself for the full sweep.
    study = run_study(library=library, seed=args.seed,
                      duration_scale=args.scale, jobs=1,
                      scenario=scenario, validate=validator,
                      cc=cc, abr=abr, repair=repair, telemetry=telemetry,
                      stream=stream, fast_path=fast_path)
    transport_note = ((f", cc {args.cc_kind}" if cc is not None else "")
                      + (", abr" if abr is not None else "")
                      + (", repair" if repair is not None else "")
                      + (f", fast-path {args.fast_path}"
                         if fast_path is not None else ""))
    print(f"# invariant check: {len(study)} pair runs "
          f"(seed {args.seed}, scale {args.scale}"
          + (f", faults {args.fault_scenario}"
             if args.fault_scenario else "")
          + transport_note + ")\n")
    print(validator.report())
    return 1 if validator.violations else 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.errors import AnalysisError
    from repro.experiments.watch import (
        DEFAULT_METRICS,
        build_rules,
        load_records,
        tail_records,
        watch_records,
    )

    if args.metrics is not None:
        metrics = tuple(metric.strip()
                        for metric in args.metrics.split(",")
                        if metric.strip())
        if not metrics:
            return _usage_error("--metric needs at least one metric name")
    else:
        metrics = DEFAULT_METRICS
    if args.idle_timeout < 0:
        return _usage_error(f"--idle-timeout must be >= 0, "
                            f"got {args.idle_timeout}")
    try:
        rules = build_rules(metrics, z_threshold=args.z,
                            window=args.window,
                            min_baseline=args.min_baseline,
                            min_delta=args.min_delta)
    except AnalysisError as exc:
        return _usage_error(f"error: {exc}")
    try:
        if args.follow:
            report = watch_records(
                tail_records(args.path, idle_timeout=args.idle_timeout),
                rules)
        else:
            report = watch_records(load_records(args.path), rules)
    except OSError as exc:
        return _usage_error(f"error: {exc}")
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"# watch: {report.records_checked} run records, "
          f"{len(rules)} rules (metrics {', '.join(metrics)}, "
          f"z {args.z:g}, window {args.window}, "
          f"min-baseline {args.min_baseline})\n")
    if report.records_checked == 0:
        print("error: no run records to watch", file=sys.stderr)
        return 1
    if report.tripped:
        for alert in report.alerts:
            print(alert.render())
        plural = "s" if len(report.alerts) != 1 else ""
        print(f"\n{len(report.alerts)} watch rule trip{plural}")
        return 1
    print("no anomalies")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import (
        cache_dir,
        clear_disk_cache,
        disk_cache_enabled,
        disk_cache_entries,
    )

    if args.action == "clear":
        removed = clear_disk_cache()
        print(f"cleared {removed} cached stud"
              f"{'y' if removed == 1 else 'ies'} from {cache_dir()}")
        return 0
    entries = disk_cache_entries()
    state = "enabled" if disk_cache_enabled() else "disabled (REPRO_STUDY_CACHE=0)"
    print(f"study cache: {cache_dir()} ({state}, "
          f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'})")
    for entry in entries:
        print(f"  seed {entry.get('seed')}, scale "
              f"{entry.get('duration_scale')}, loss "
              f"{entry.get('loss_probability')}, "
              f"{entry.get('runs')} runs, "
              f"{entry.get('size_bytes', 0) / 1024:.0f} KiB "
              f"(code {entry.get('code')})")
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import pool_info, shutdown_pool

    if args.action == "shutdown":
        stopped = shutdown_pool()
        print("stopped the warm worker pool" if stopped
              else "no warm worker pool to stop")
        return 0
    info = pool_info()
    if not info["workers"]:
        print("worker pool: cold (no persistent pool in this process); "
              "a parallel run_study() warms one and later studies "
              "reuse it until shutdown_pool() or process exit")
        return 0
    print(f"worker pool: warm, {info['workers']} workers, "
          f"{info['studies']} stud"
          f"{'y' if info['studies'] == 1 else 'ies'} served")
    return 0


_HANDLERS = {
    "study": _cmd_study,
    "pool": _cmd_pool,
    "faults": _cmd_faults,
    "cc": _cmd_cc,
    "repair": _cmd_repair,
    "validate": _cmd_validate,
    "watch": _cmd_watch,
    "cache": _cmd_cache,
    "telemetry": _cmd_telemetry,
    "spans": _cmd_spans,
    "scorecard": _cmd_scorecard,
    "figure": _cmd_figure,
    "table1": _cmd_table1,
    "generate": _cmd_generate,
    "pcap-info": _cmd_pcap_info,
    "probe": _cmd_probe,
    "boundary": _cmd_boundary,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())

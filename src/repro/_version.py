"""Version of the turbulence reproduction library."""

__version__ = "1.0.0"

"""Turbulence profiles: the paper's flow characterization as a value.

"In a network, the size and distribution of packets over time is
important, hence our word *turbulence*" (paper, footnote 1).  A
:class:`TurbulenceProfile` captures exactly that for one flow: size and
interarrival distributions with their variation coefficients, the
fragmentation signature, and the buffering burst — enough to classify a
flow as MediaPlayer-like CBR or RealPlayer-like VBR, and enough to
parameterize a Section IV generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import AnalysisError

#: Coefficient-of-variation ceiling below which a flow reads as CBR.
#: MediaPlayer flows in the paper are near 0 on both axes; RealPlayer
#: flows are far above on both.
CBR_CV_THRESHOLD = 0.20


@dataclass(frozen=True)
class TurbulenceProfile:
    """The network-layer fingerprint of one streaming flow."""

    label: str
    encoded_kbps: float
    #: Wire-level packet sizes (bytes).
    mean_packet_bytes: float
    packet_size_cv: float
    packet_size_pdf: Tuple[Tuple[float, float], ...]
    #: Datagram-group (ADU) total sizes.  For fragmented CBR traffic
    #: the per-packet sizes are bimodal (full frames + a short tail)
    #: while the ADUs are constant, so CBR-ness is judged here.
    adu_size_cv: float
    #: Datagram-group interarrivals (seconds), fragment noise removed.
    mean_interarrival: float
    interarrival_cv: float
    interarrival_pdf: Tuple[Tuple[float, float], ...]
    #: IP fragmentation signature.
    fragment_percent: float
    typical_group_size: int
    #: Buffering-phase signature (ratio 1.0 = no burst).
    burst_ratio: float = 1.0
    burst_duration: float = 0.0

    def __post_init__(self) -> None:
        if self.encoded_kbps <= 0:
            raise AnalysisError("profile needs a positive encoding rate")
        if self.mean_packet_bytes <= 0:
            raise AnalysisError("profile needs a positive mean packet size")
        if self.mean_interarrival <= 0:
            raise AnalysisError("profile needs a positive mean interarrival")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_cbr(self) -> bool:
        """True when ADU sizes and gaps are near-constant (WMP-like)."""
        return (self.adu_size_cv < CBR_CV_THRESHOLD
                and self.interarrival_cv < CBR_CV_THRESHOLD)

    @property
    def fragments(self) -> bool:
        return self.fragment_percent > 0.0

    @property
    def bursts(self) -> bool:
        return self.burst_ratio > 1.25

    def classify(self) -> str:
        """A coarse product guess from the turbulence alone.

        The paper's separation is stark enough that fragmentation or
        the (CBR, burst) pair identifies the product: MediaPlayer
        fragments and is CBR with no burst; RealPlayer never fragments,
        varies on both axes, and bursts.
        """
        if self.fragments:
            return "mediaplayer"
        if self.is_cbr and not self.bursts:
            return "mediaplayer"
        return "realplayer"

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def mean_rate_kbps(self) -> float:
        """Steady delivered rate implied by the profile."""
        group_bytes = self.mean_packet_bytes * max(1,
                                                   self.typical_group_size)
        return group_bytes * 8.0 / self.mean_interarrival / 1000.0

    def summary_row(self) -> List[object]:
        """One row for profile comparison tables."""
        return [self.label, f"{self.encoded_kbps:.0f}",
                f"{self.mean_packet_bytes:.0f}",
                f"{self.packet_size_cv:.2f}",
                f"{self.mean_interarrival * 1000:.1f}",
                f"{self.interarrival_cv:.2f}",
                f"{self.fragment_percent:.0f}%",
                f"{self.burst_ratio:.2f}",
                self.classify()]

    SUMMARY_HEADERS = ("flow", "kbps", "pkt B", "size cv", "gap ms",
                       "gap cv", "frag", "burst", "classified")

"""Fit a turbulence profile from a capture.

Given the media-flow trace of one clip (and optionally the tracker's
application statistics), measure every field of a
:class:`~repro.core.turbulence.TurbulenceProfile` exactly the way the
paper's Section III does: wire sizes for the packet-size distribution,
first-of-group interarrivals to remove fragment noise, trailing
fragments for the fragmentation share, and the bandwidth timeline for
the buffering ratio.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.bandwidth import bandwidth_series
from repro.analysis.buffering import (
    BURST_THRESHOLD,
    buffering_ratio_vs_playout,
)
from repro.analysis.distributions import pdf, summarize
from repro.analysis.interarrival import first_of_group_interarrivals
from repro.analysis.normalize import coefficient_of_variation
from repro.capture.reassembly import fragmentation_percent, group_datagrams
from repro.capture.trace import Trace
from repro.core.turbulence import TurbulenceProfile
from repro.errors import AnalysisError
from repro.players.stats import PlayerStats


def fit_profile(trace: Trace, encoded_kbps: float, label: str = "",
                stats: Optional[PlayerStats] = None,
                pdf_bins: int = 24) -> TurbulenceProfile:
    """Measure a flow's turbulence profile.

    Args:
        trace: the flow's packets (one clip, one direction).
        encoded_kbps: the clip's encoded rate (from the tracker's
            DESCRIBE log, as in the paper's Table 1).
        stats: optional tracker statistics; when given, the buffering
            burst is measured from the application bandwidth timeline
            (more faithful); otherwise from the trace.
        pdf_bins: resolution of the stored distributions.

    Raises:
        AnalysisError: when the trace is too small to characterize
            (needs at least 2 datagram groups).
    """
    if len(trace) < 4:
        raise AnalysisError("trace too small to fit a turbulence profile")

    sizes = [float(record.wire_bytes) for record in trace]
    size_summary = summarize(sizes)
    gaps = first_of_group_interarrivals(trace)
    if not gaps:
        raise AnalysisError("trace has fewer than two datagram groups")
    gap_summary = summarize(gaps)

    groups = group_datagrams(trace)
    group_sizes = sorted(group.packet_count for group in groups)
    typical_group = group_sizes[len(group_sizes) // 2]
    # ADU-level size regularity; drop the clip's truncated final ADU so
    # a strictly CBR flow measures as exactly constant.
    group_bytes = [float(group.wire_bytes) for group in groups]
    if len(group_bytes) > 2:
        group_bytes = group_bytes[:-1]
    adu_size_cv = coefficient_of_variation(group_bytes)

    burst_ratio = 1.0
    burst_duration = 0.0
    series = None
    if stats is not None:
        series = stats.bandwidth_timeline(interval=1.0)
    elif trace.duration > 4.0:
        series = bandwidth_series(trace, interval=1.0)
    if series is not None and len(series) >= 4:
        # Ratio against the known playout (encoding) rate, which stays
        # well-defined even when a short clip is consumed entirely
        # within the burst (see Figure 11's definition).
        burst_ratio = max(1.0, buffering_ratio_vs_playout(series,
                                                          encoded_kbps))
        threshold = encoded_kbps * BURST_THRESHOLD
        burst_duration = 0.0
        for _, rate in series:
            if rate <= threshold:
                break
            burst_duration += 1.0

    return TurbulenceProfile(
        label=label or trace.description,
        encoded_kbps=encoded_kbps,
        mean_packet_bytes=size_summary.mean,
        packet_size_cv=coefficient_of_variation(sizes),
        packet_size_pdf=tuple(pdf(sizes, bins=pdf_bins)),
        adu_size_cv=adu_size_cv,
        mean_interarrival=gap_summary.mean,
        interarrival_cv=coefficient_of_variation(gaps),
        interarrival_pdf=tuple(pdf(gaps, bins=pdf_bins)),
        fragment_percent=fragmentation_percent(trace),
        typical_group_size=typical_group,
        burst_ratio=burst_ratio,
        burst_duration=burst_duration)

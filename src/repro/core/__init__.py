"""The paper's contribution, packaged for reuse.

Two artifacts survive from the study:

1. **Turbulence profiles** — the empirical characterization of a
   streaming flow at the network layer: packet-size and interarrival
   distributions, their CBR-ness, fragmentation behavior, and the
   buffering burst.  :func:`fit_profile` extracts one from any capture.

2. **Section IV's flow generators** — "simulations based on data from
   this paper can be an effective means of exploring network impact":
   pick an RTT from Figure 1, an encoding from Table 1, sizes from
   Figures 6–7, intervals from Figures 8–9, fragmentation from
   Figure 5, and the Real burst from Figure 11.
   :class:`MediaPlayerFlowModel` and :class:`RealPlayerFlowModel` are
   that recipe, generating packet schedules with no simulator required
   (and replayable into one).
"""

from repro.core.fitting import fit_profile
from repro.core.generator import FlowReplayer, SyntheticFlow, generate_flow
from repro.core.models import (
    MediaPlayerFlowModel,
    PacketEvent,
    RealPlayerFlowModel,
    flow_model_for,
    sample_hop_count,
    sample_rtt,
)
from repro.core.turbulence import TurbulenceProfile

__all__ = [
    "FlowReplayer",
    "MediaPlayerFlowModel",
    "PacketEvent",
    "RealPlayerFlowModel",
    "SyntheticFlow",
    "TurbulenceProfile",
    "fit_profile",
    "flow_model_for",
    "generate_flow",
    "sample_hop_count",
    "sample_rtt",
]

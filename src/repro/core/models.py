"""Section IV flow models: synthesizing realistic streaming traffic.

The paper sketches how to simulate a 2002 commercial streaming flow:

    "...select an RTT based on Figure 1. Then, we would select an
    encoding rate and clip length from one of the data sets in Table 1.
    We would select packet sizes from distributions based on Figures 6
    and 7 and generate packets at intervals based on distributions from
    Figures 8 and 9. MediaPlayer packets should include IP
    fragmentation rates based on Figure 5. RealPlayer data rates for
    the first 20 seconds (for low data rate clips) to 40 seconds (for
    high data rate clips) should be higher than the encoded rate based
    on Figure 11."

These classes implement that recipe directly — no event-driven
simulator required — producing per-packet schedules a network simulator
(ns-2 then, anything now) can replay as an unresponsive UDP source.
The numeric calibrations are shared with the in-simulator server models
so fitted and generated flows agree.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import units
from repro.errors import MediaError
from repro.media.clip import PlayerFamily
from repro.servers.pacing import (
    REAL_MAX_PACKET_BYTES,
    REAL_MIN_PACKET_BYTES,
    WMS_MAX_SMALL_ADU_BYTES,
    WMS_MIN_ADU_BYTES,
    real_mean_packet_bytes,
    wms_packetization,
)
from repro.servers.realserver import buffering_ratio, burst_duration


@dataclass(frozen=True)
class PacketEvent:
    """One wire packet of a synthetic flow."""

    time: float
    ip_bytes: int
    group_sequence: int
    is_trailing_fragment: bool
    more_fragments: bool
    fragment_offset: int  # 8-byte units, as on the wire

    @property
    def wire_bytes(self) -> int:
        return units.wire_frame_bytes(self.ip_bytes)

    @property
    def is_fragment(self) -> bool:
        return self.more_fragments or self.fragment_offset > 0


# ----------------------------------------------------------------------
# Network-condition sampling (Figures 1 and 2)
# ----------------------------------------------------------------------

#: Piecewise-linear inverse CDF of the paper's Figure 1 RTTs:
#: median 40 ms, maximum 160 ms.
_RTT_QUANTILES: Tuple[Tuple[float, float], ...] = (
    (0.00, 0.010),
    (0.25, 0.030),
    (0.50, 0.040),
    (0.75, 0.055),
    (0.90, 0.095),
    (1.00, 0.160),
)

#: Figure 2's hop counts: "most of the servers were between 15 and 20
#: hops away", full range roughly 12-25.
_HOP_BUCKETS: Tuple[Tuple[Tuple[int, int], float], ...] = (
    ((12, 14), 0.15),
    ((15, 20), 0.70),
    ((21, 25), 0.15),
)


def sample_rtt(rng: random.Random) -> float:
    """Draw an RTT (seconds) from Figure 1's empirical distribution."""
    u = rng.random()
    for (q_low, v_low), (q_high, v_high) in zip(_RTT_QUANTILES,
                                                _RTT_QUANTILES[1:]):
        if u <= q_high:
            span = q_high - q_low
            weight = (u - q_low) / span if span else 0.0
            return v_low + weight * (v_high - v_low)
    return _RTT_QUANTILES[-1][1]


def sample_hop_count(rng: random.Random) -> int:
    """Draw a hop count from Figure 2's empirical distribution."""
    u = rng.random()
    cumulative = 0.0
    for (low, high), weight in _HOP_BUCKETS:
        cumulative += weight
        if u <= cumulative:
            return rng.randint(low, high)
    return rng.randint(*_HOP_BUCKETS[-1][0])


# ----------------------------------------------------------------------
# Flow models
# ----------------------------------------------------------------------
class MediaPlayerFlowModel:
    """Generate Windows-Media-like turbulence (CBR + fragmentation).

    Args:
        encoded_kbps: the clip's encoding rate (pick from Table 1).
        rng: random source (only the per-clip ADU size draws from it;
            the flow itself is CBR).
    """

    def __init__(self, encoded_kbps: float,
                 rng: Optional[random.Random] = None) -> None:
        if encoded_kbps <= 0:
            raise MediaError(f"rate must be positive: {encoded_kbps}")
        self.encoded_kbps = encoded_kbps
        rng = rng or random.Random(0)
        small_adu = rng.randint(WMS_MIN_ADU_BYTES, WMS_MAX_SMALL_ADU_BYTES)
        self.adu_bytes, self.tick_interval = wms_packetization(
            units.kbps(encoded_kbps), small_adu)

    def group_payloads(self, duration: float) -> List[Tuple[float, int]]:
        """(send time, ADU payload bytes) for a clip of ``duration``."""
        # Integer byte budget: a fractional remainder would otherwise
        # produce a zero-byte tail payload and a non-terminating loop.
        total_bytes = int(round(units.bits_to_bytes(
            units.kbps(self.encoded_kbps) * duration)))
        payloads: List[Tuple[float, int]] = []
        sent = 0
        tick = 0
        while sent < total_bytes:
            payload = int(min(self.adu_bytes, total_bytes - sent))
            payloads.append((tick * self.tick_interval, payload))
            sent += payload
            tick += 1
        return payloads

    def packet_schedule(self, duration: float) -> List[PacketEvent]:
        """Expand ADUs into the on-wire fragment trains."""
        events: List[PacketEvent] = []
        chunk = units.FRAGMENT_PAYLOAD_BYTES
        for group, (time, payload) in enumerate(
                self.group_payloads(duration)):
            ip_payload = payload + units.UDP_HEADER_BYTES
            count = max(1, math.ceil(ip_payload / chunk))
            offset = 0
            remaining = ip_payload
            for index in range(count):
                this_payload = min(chunk, remaining)
                events.append(PacketEvent(
                    time=time,
                    ip_bytes=units.IPV4_HEADER_BYTES + this_payload,
                    group_sequence=group,
                    is_trailing_fragment=index > 0,
                    more_fragments=(count > 1 and index < count - 1),
                    fragment_offset=offset // 8))
                offset += this_payload
                remaining -= this_payload
        return events


class RealPlayerFlowModel:
    """Generate RealPlayer-like turbulence (VBR + buffering burst).

    Args:
        encoded_kbps: the clip's encoding rate.
        rng: random source for size/interval draws.
        burst_ratio / burst_seconds: override the Figure 11 defaults.
    """

    INTERARRIVAL_SHAPE = 4.0

    def __init__(self, encoded_kbps: float,
                 rng: Optional[random.Random] = None,
                 burst_ratio: Optional[float] = None,
                 burst_seconds: Optional[float] = None) -> None:
        if encoded_kbps <= 0:
            raise MediaError(f"rate must be positive: {encoded_kbps}")
        self.encoded_kbps = encoded_kbps
        self._rng = rng or random.Random(0)
        self.burst_ratio = (burst_ratio if burst_ratio is not None
                            else buffering_ratio(encoded_kbps))
        self.burst_seconds = (burst_seconds if burst_seconds is not None
                              else burst_duration(encoded_kbps))
        self.mean_packet_bytes = real_mean_packet_bytes(encoded_kbps)

    def _draw_size(self) -> int:
        if self._rng.random() < 0.72:
            factor = self._rng.uniform(0.60, 1.30)
        else:
            factor = self._rng.uniform(1.30, 1.80)
        size = int(round(self.mean_packet_bytes * factor))
        return max(REAL_MIN_PACKET_BYTES, min(size, REAL_MAX_PACKET_BYTES))

    def packet_schedule(self, duration: float) -> List[PacketEvent]:
        """The full on-wire schedule for a clip of ``duration``.

        Total bytes are conserved (rate × duration); the burst phase
        simply front-loads them, so the generated flow ends early just
        like a measured RealPlayer stream.
        """
        total_bytes = int(round(units.bits_to_bytes(
            units.kbps(self.encoded_kbps) * duration)))
        events: List[PacketEvent] = []
        time = 0.0
        sent = 0
        group = 0
        rate_bps = units.kbps(self.encoded_kbps)
        while sent < total_bytes:
            payload = min(self._draw_size(), int(total_bytes - sent))
            events.append(PacketEvent(
                time=time,
                ip_bytes=(units.IPV4_HEADER_BYTES + units.UDP_HEADER_BYTES
                          + payload),
                group_sequence=group,
                is_trailing_fragment=False,
                more_fragments=False,
                fragment_offset=0))
            sent += payload
            group += 1
            ratio = (self.burst_ratio if time < self.burst_seconds else 1.0)
            mean_gap = payload * 8.0 / (rate_bps * ratio)
            shape = self.INTERARRIVAL_SHAPE
            time += self._rng.gammavariate(shape, mean_gap / shape)
        return events


def flow_model_for(family: PlayerFamily, encoded_kbps: float,
                   rng: Optional[random.Random] = None):
    """The Section IV model class for a player family."""
    if family == PlayerFamily.WMP:
        return MediaPlayerFlowModel(encoded_kbps, rng)
    return RealPlayerFlowModel(encoded_kbps, rng)

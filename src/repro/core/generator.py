"""Synthetic flows: generation, trace conversion, and replay.

Ties the Section IV models to the rest of the library:

* :func:`generate_flow` produces a :class:`SyntheticFlow` for a family
  and encoding rate;
* :meth:`SyntheticFlow.to_trace` converts it into a capture-compatible
  :class:`~repro.capture.trace.Trace`, so the same analysis (and the
  same profile fitting) runs on generated traffic — the round-trip
  validation the Section IV bench performs;
* :class:`FlowReplayer` injects the flow into a live simulation as an
  unresponsive UDP source (background traffic for congestion studies).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import units
from repro.capture.trace import PacketRecord, Trace
from repro.errors import MediaError
from repro.media.clip import PlayerFamily
from repro.netsim.addressing import IPAddress
from repro.netsim.engine import Simulator
from repro.netsim.headers import PayloadMeta
from repro.netsim.udp import UdpSocket
from repro.core.models import (
    MediaPlayerFlowModel,
    PacketEvent,
    RealPlayerFlowModel,
)

_DEFAULT_SRC = IPAddress.parse("64.14.118.10")
_DEFAULT_DST = IPAddress.parse("130.215.0.10")


@dataclass
class SyntheticFlow:
    """A generated packet schedule plus its provenance."""

    family: PlayerFamily
    encoded_kbps: float
    duration: float
    events: List[PacketEvent] = field(default_factory=list)

    @property
    def packet_count(self) -> int:
        return len(self.events)

    @property
    def total_wire_bytes(self) -> int:
        return sum(event.wire_bytes for event in self.events)

    @property
    def streaming_duration(self) -> float:
        """Wall time the flow occupies (shorter than the clip for
        RealPlayer flows, which front-load the burst)."""
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time

    def group_payloads(self) -> List[Tuple[float, int]]:
        """(time, UDP payload bytes) per datagram group — the schedule
        a replayer hands to sendto()."""
        groups: dict = {}
        order: List[int] = []
        for event in self.events:
            if event.group_sequence not in groups:
                groups[event.group_sequence] = [event.time, 0]
                order.append(event.group_sequence)
            groups[event.group_sequence][1] += (
                event.ip_bytes - units.IPV4_HEADER_BYTES)
        result = []
        for sequence in order:
            time, ip_payload = groups[sequence]
            result.append((time, ip_payload - units.UDP_HEADER_BYTES))
        return result

    def to_trace(self, src: IPAddress = _DEFAULT_SRC,
                 dst: IPAddress = _DEFAULT_DST, src_port: int = 5005,
                 dst_port: int = 7000) -> Trace:
        """Render the flow as a capture trace for re-analysis."""
        records = []
        for number, event in enumerate(self.events, start=1):
            first_of_group = not event.is_trailing_fragment
            records.append(PacketRecord(
                number=number, time=event.time, direction="rx",
                src=src, dst=dst, protocol="UDP",
                ip_bytes=event.ip_bytes, wire_bytes=event.wire_bytes,
                ttl=114, identification=event.group_sequence + 1,
                is_fragment=event.is_fragment,
                is_trailing_fragment=event.is_trailing_fragment,
                more_fragments=event.more_fragments,
                fragment_offset=event.fragment_offset,
                src_port=src_port if first_of_group else None,
                dst_port=dst_port if first_of_group else None,
                payload_kind="media",
                datagram_id=event.group_sequence + 1))
        return Trace(records,
                     description=(f"synthetic {self.family.value} "
                                  f"{self.encoded_kbps:.0f}Kbps"))


def generate_flow(family: PlayerFamily, encoded_kbps: float,
                  duration: float, seed: int = 0) -> SyntheticFlow:
    """Generate a Section IV flow.

    Raises:
        MediaError: for nonpositive rate or duration.
    """
    if duration <= 0:
        raise MediaError(f"duration must be positive: {duration}")
    rng = random.Random(seed)
    if family == PlayerFamily.WMP:
        model = MediaPlayerFlowModel(encoded_kbps, rng)
    else:
        model = RealPlayerFlowModel(encoded_kbps, rng)
    events = model.packet_schedule(duration)
    return SyntheticFlow(family=family, encoded_kbps=encoded_kbps,
                         duration=duration, events=events)


class FlowReplayer:
    """Inject a synthetic flow into a live simulation over UDP.

    Datagram-level replay: each group's payload is handed to the
    socket whole, so MediaPlayer ADUs re-fragment in the simulated IP
    layer exactly as the original server's would.
    """

    def __init__(self, sim: Simulator, socket: UdpSocket, dst: IPAddress,
                 dst_port: int, flow: SyntheticFlow) -> None:
        self.sim = sim
        self.socket = socket
        self.dst = dst
        self.dst_port = dst_port
        self.flow = flow
        self.datagrams_sent = 0
        self._started = False

    def start(self) -> "FlowReplayer":
        if self._started:
            raise MediaError("replayer already started")
        self._started = True
        origin = self.sim.now
        for sequence, (time, payload) in enumerate(
                self.flow.group_payloads()):
            self.sim.schedule_at(origin + time, self._send, sequence,
                                 payload)
        return self

    def _send(self, sequence: int, payload: int) -> None:
        meta = PayloadMeta(kind="media", adu_sequence=sequence)
        self.socket.send(self.dst, self.dst_port, payload, payload=meta)
        self.datagrams_sent += 1

#!/usr/bin/env python3
"""Quickstart: stream one RealPlayer/MediaPlayer pair and compare.

Reproduces one run of the paper's methodology in ~40 lines: build an
Internet path, put a RealServer and a Windows Media Server on the
co-located server subnet, capture at the client while both trackers
play the same content simultaneously, then print the headline numbers.

Run:
    python examples/quickstart.py
"""

from repro.capture.reassembly import fragmentation_percent
from repro.capture.sniffer import Sniffer
from repro.media.clip import Clip, ClipEncoding, PlayerFamily
from repro.netsim.engine import Simulator
from repro.netsim.topology import build_path_topology
from repro.players.mediatracker import MediaTracker
from repro.players.realtracker import RealTracker
from repro.servers.realserver import RealServer
from repro.servers.wms import WindowsMediaServer


def make_clip(family: PlayerFamily, kbps: float, title: str) -> Clip:
    return Clip(title=title, genre="Sports", duration=60.0,
                encoding=ClipEncoding(family=family, encoded_kbps=kbps,
                                      advertised_kbps=300.0))


def main() -> None:
    sim = Simulator(seed=2002)
    path = build_path_topology(sim, hop_count=17, rtt=0.040)

    real_server = RealServer(path.servers[0])
    real_server.add_clip(make_clip(PlayerFamily.REAL, 284.0, "game-r"))
    wms = WindowsMediaServer(path.servers[1])
    wms.add_clip(make_clip(PlayerFamily.WMP, 323.1, "game-m"))

    sniffer = Sniffer(path.client, rx_only=True).start()
    real_player = RealTracker(path.client, path.servers[0].address)
    media_player = MediaTracker(path.client, path.servers[1].address)
    real_player.play("game-r")
    media_player.play("game-m")
    sim.run(until=300.0)
    trace = sniffer.stop()

    real_flow = trace.udp().flow(path.servers[0].address)
    wmp_flow = trace.udp().flow(path.servers[1].address)
    print(f"captured {len(trace)} packets at the client")
    print(f"RealPlayer  284.0 Kbps: {len(real_flow)} packets, "
          f"{fragmentation_percent(real_flow):.0f}% fragments, "
          f"avg playback {real_player.stats.average_playback_kbps:.0f} "
          f"Kbps, {real_player.stats.average_fps:.1f} fps")
    print(f"MediaPlayer 323.1 Kbps: {len(wmp_flow)} packets, "
          f"{fragmentation_percent(wmp_flow):.0f}% fragments, "
          f"avg playback {media_player.stats.average_playback_kbps:.0f} "
          f"Kbps, {media_player.stats.average_fps:.1f} fps")
    print(f"Real streamed for {real_player.stats.streaming_duration:.0f}s, "
          f"WMP for {media_player.stats.streaming_duration:.0f}s of a "
          "60s clip (Real bursts, then finishes early)")


if __name__ == "__main__":
    main()

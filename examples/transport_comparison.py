#!/usr/bin/env python3
"""UDP versus TCP media transport: the counterfactual the paper skipped.

"Both MediaPlayer and RealPlayer can use either TCP or UDP as a
transport protocol for streaming data. For all our experiments, we
forced the players to use UDP."  This example streams the same
high-rate Windows Media clip both ways and shows that the paper's
headline fragmentation finding is a property of UDP transport of
oversized ADUs — over TCP, MSS segmentation happens above IP and the
fragment trains vanish, while the viewer-visible outcome is unchanged
on a clean path.

Run:
    python examples/transport_comparison.py
"""

from repro.analysis.report import format_table
from repro.capture.hierarchy import render_hierarchy
from repro.capture.reassembly import fragmentation_percent
from repro.capture.sniffer import Sniffer
from repro.media.clip import Clip, ClipEncoding, PlayerFamily
from repro.netsim.engine import Simulator
from repro.netsim.topology import build_path_topology
from repro.players.mediatracker import MediaTracker
from repro.servers.wms import WindowsMediaServer


def run(transport: str):
    sim = Simulator(seed=2002)
    path = build_path_topology(sim, hop_count=17, rtt=0.040)
    server = WindowsMediaServer(path.server)
    server.add_clip(Clip(
        title="news", genre="News", duration=30.0,
        encoding=ClipEncoding(family=PlayerFamily.WMP,
                              encoded_kbps=307.2, advertised_kbps=300.0)))
    sniffer = Sniffer(path.client, rx_only=True).start()
    player = MediaTracker(path.client, path.server.address,
                          transport=transport)
    player.play("news")
    sim.run(until=200.0)
    return player, sniffer.stop()


def main() -> None:
    rows = []
    traces = {}
    for transport in ("UDP", "TCP"):
        player, trace = run(transport)
        traces[transport] = trace
        rows.append([
            transport, len(trace),
            fragmentation_percent(trace),
            max(record.wire_bytes for record in trace),
            player.stats.average_fps,
            player.stats.average_playback_kbps,
        ])
    print("the same 307.2 Kbps Windows Media clip over both transports:")
    print(format_table(("transport", "packets", "frag %", "max frame B",
                        "fps", "playback Kbps"), rows))
    print()
    for transport in ("UDP", "TCP"):
        print(f"--- {transport} capture ---")
        print(render_hierarchy(traces[transport]))
        print()
    print("over UDP the OS fragments every 3840-byte ADU (the paper's")
    print("Figure 5); over TCP the same ADUs ride ≤1460-byte segments")
    print("and the ip.fragment row disappears.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Ethereal-style capture analysis: filters, fragment trains, pcap I/O.

Streams a high-rate MediaPlayer clip, then walks through the capture
workflow the paper's Section III relies on: display filters to isolate
flows, fragment-train grouping (Figure 4's packet groups), the
first-of-group interarrival reduction (Figure 9), and a pcap round
trip.

Run:
    python examples/capture_analysis.py
"""

import io
import statistics

from repro.analysis.interarrival import (
    first_of_group_interarrivals,
    trace_interarrivals,
)
from repro.capture.pcap import read_pcap, write_pcap
from repro.capture.reassembly import group_datagrams
from repro.capture.sniffer import Sniffer
from repro.media.clip import Clip, ClipEncoding, PlayerFamily
from repro.netsim.engine import Simulator
from repro.netsim.topology import build_path_topology
from repro.players.mediatracker import MediaTracker
from repro.servers.wms import WindowsMediaServer


def main() -> None:
    sim = Simulator(seed=7)
    path = build_path_topology(sim, hop_count=17, rtt=0.040)
    server = WindowsMediaServer(path.server)
    server.add_clip(Clip(
        title="news-m", genre="News", duration=30.0,
        encoding=ClipEncoding(family=PlayerFamily.WMP,
                              encoded_kbps=307.2, advertised_kbps=300.0)))

    sniffer = Sniffer(path.client).start()
    player = MediaTracker(path.client, path.server.address)
    player.play("news-m")
    sim.run(until=120.0)
    trace = sniffer.stop()
    print(f"captured {len(trace)} packets "
          f"({trace.total_wire_bytes / 1024:.0f} KiB on the wire)")

    # Display filters, as in Ethereal.
    for expression in ("udp && !ip.frag", "ip.frag.trailing",
                       "frame.len == 1514", "tcp && tcp.port == 554"):
        matched = trace.display_filter(expression)
        print(f"  filter {expression!r}: {len(matched)} packets")

    # Fragment trains (Figure 4's groups).
    media = trace.udp().flow(path.server.address).filter(
        lambda r: r.payload_kind == "media")
    groups = group_datagrams(media)
    sizes = [g.packet_count for g in groups]
    print(f"fragment trains: {len(groups)} groups, "
          f"typical size {statistics.median(sizes):.0f} "
          "(1 UDP packet + IP fragments)")

    # Interarrival denoising (Figure 9's reduction).
    raw_cv = _cv(trace_interarrivals(media))
    grouped_cv = _cv(first_of_group_interarrivals(media))
    print(f"interarrival CV: raw={raw_cv:.2f} -> first-of-group="
          f"{grouped_cv:.2f} (fragment noise removed)")

    # pcap round trip.
    buffer = io.BytesIO()
    write_pcap(media, buffer)
    buffer.seek(0)
    reloaded = read_pcap(buffer, local_address=path.client.address)
    print(f"pcap round trip: {len(reloaded)} packets, "
          f"first frame {reloaded[0].wire_bytes} wire bytes "
          f"({reloaded[0].protocol})")


def _cv(values):
    mean = statistics.fmean(values)
    return statistics.pstdev(values) / mean if mean else 0.0


if __name__ == "__main__":
    main()

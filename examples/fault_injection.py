#!/usr/bin/env python3
"""Fault injection: a seeded link flap and the recovery that follows.

Runs one RealServer-vs-WMS pair with the canonical ``link-flap``
scenario armed: mid-playback the middle link goes dark, routing
re-converges after the outage heals, the control connections survive
on TCP retransmissions, and the players degrade gracefully —
rebuffering, downshifting quality, and (when the burst-delivered Real
stream's tail vanished into the outage) stopping deterministically via
the stall watchdog. The recovery report folds the telemetry stream
into the recovery times.

Everything is pure data under the seed: the same ``(seed, scenario)``
pair reproduces this output byte-for-byte.

Run:
    python examples/fault_injection.py
"""

from repro.experiments.datasets import build_table1_library
from repro.experiments.runner import run_pair_experiment, study_conditions
from repro.faults import build_scenario, recovery_report
from repro.telemetry import MemorySink, Telemetry

SEED = 2002
SCALE = 0.25


def main() -> None:
    scenario = build_scenario("link-flap", SEED)
    print(f"scenario {scenario.name!r}: {scenario.description}")
    for event in scenario.events:
        print(f"  at {event.at_frac:.3f} x clip duration: "
              f"{event.action} on {event.target!r}")
    print()

    library = build_table1_library(duration_scale=SCALE)
    clip_set, pair = library.all_pairs()[0]
    telemetry = Telemetry(sinks=[MemorySink(capacity=None)])
    result = run_pair_experiment(
        clip_set, pair, seed=SEED, conditions=study_conditions(SEED, 0),
        telemetry=telemetry, scenario=scenario)

    report = recovery_report(telemetry.memory_events(),
                             scenario=scenario.name)
    print(report.render())
    print()
    for name, stats in (("real", result.real_stats),
                        ("wmp", result.wmp_stats)):
        print(f"{name}: stream ended at t={stats.eos_at:.3f}s, "
              f"{stats.packets_lost} packets lost")
    print()
    print("The WMS stream paces at 1x and rides the outage out: it")
    print("rebuffers, downshifts, and recovers. The Real stream burst")
    print("its whole tail ahead of real time, so the outage can swallow")
    print("the remainder plus the EOS — then the stall watchdog ends")
    print("playback at the last media arrival, a deterministic stop.")


if __name__ == "__main__":
    main()

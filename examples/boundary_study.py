#!/usr/bin/env python3
"""The Internet-boundary study (the paper's other future-work item).

"It would be interesting to examine traces at an Internet boundary,
such as the egress to our University... Such analysis might reveal
interactions between the media flows that our single client studies did
not illustrate."

Four campus clients stream simultaneously (alternating RealPlayer and
MediaPlayer sessions) while a sniffer sits on the shared egress router.
The interaction revealed: a steady aggregate while all sessions
overlap, then a sharp rate cliff when the front-loaded Real sessions
finish early.

Run:
    python examples/boundary_study.py
"""

from repro.analysis.report import format_table
from repro.core.turbulence import TurbulenceProfile
from repro.experiments.aggregate import run_boundary_study


def main() -> None:
    print("streaming to 4 campus clients through one egress...")
    result = run_boundary_study(client_count=4, duration=45.0,
                                encoded_kbps=180.0, seed=2002)
    print(f"egress capture: {len(result.egress_trace)} packets")
    print()
    print("per-flow turbulence as seen at the boundary:")
    print(format_table(TurbulenceProfile.SUMMARY_HEADERS,
                       [p.summary_row() for p in result.per_flow_profiles]))
    print()
    spans = ", ".join(f"{span:.0f}s" for span in result.flow_spans)
    print(f"flow durations (Real, WMP alternating): {spans}")
    print(f"aggregate while all flows active: "
          f"{result.aggregate_kbps:.0f} Kbps, CV "
          f"{result.common_window_cv:.2f}")
    print(f"aggregate over the whole capture: CV "
          f"{result.full_span_cv:.2f} "
          f"(cliff factor {result.cliff_factor:.1f})")
    print()
    print("the Real sessions' early endings carve a rate cliff into the")
    print("egress load — an interaction invisible to the paper's")
    print("single-client methodology.")


if __name__ == "__main__":
    main()

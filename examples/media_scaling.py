#!/usr/bin/env python3
"""Media scaling and TCP-friendliness (the paper's §VI proposal).

Runs the same high-rate stream over an increasingly lossy path, with
and without server-side media scaling, and compares the offered load
against the TCP-friendly bound T = 1.22·MTU/(RTT·√p).  The expected
(and reproduced) conclusion is the paper's: commercial players are not
TCP-friendly — scaling reduces the rate in coarse ladder steps, while
TCP would back off continuously.

Run:
    python examples/media_scaling.py
"""

from repro.analysis.report import format_table
from repro.experiments.tcp_friendly import run_probe
from repro.media.clip import PlayerFamily

LOSS_LEVELS = (0.02, 0.05, 0.10, 0.15)
RTT = 0.200


def main() -> None:
    rows = []
    for loss in LOSS_LEVELS:
        for scaling in (False, True):
            result = run_probe(PlayerFamily.WMP, 307.2,
                               loss_probability=loss, duration=45.0,
                               rtt=RTT, scaling=scaling)
            rows.append([
                f"{loss * 100:.0f}%",
                "scaling" if scaling else "unresponsive",
                result.offered_kbps,
                result.tcp_friendly_kbps,
                result.friendliness_index,
                f"{result.final_rate_scale:.2f}",
            ])
    print(f"307.2 Kbps Windows Media stream, RTT {RTT * 1000:.0f} ms, "
          "1 s receiver reports:")
    print(format_table(
        ("link loss", "server mode", "offered Kbps",
         "TCP-friendly Kbps", "friendliness index", "final scale"),
        rows))
    print()
    print("index > 1 = the flow offers more than a conformant TCP's")
    print("share. The unresponsive stream crosses into unfriendly")
    print("territory as loss grows — the paper's expectation ('more")
    print("likely the lack of TCP-Friendliness'). The scaling ladder")
    print("pulls the rate back under the bound, but in coarse steps")
    print("and only at multi-percent loss, unlike TCP's control law.")


if __name__ == "__main__":
    main()

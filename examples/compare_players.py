#!/usr/bin/env python3
"""Full pair experiment with turbulence profiles and ASCII figures.

Runs the paper's methodology for one Table 1 clip set (pings, tracert,
simultaneous streams, capture), fits turbulence profiles for both
flows, and renders the set's bandwidth-versus-time figure (the paper's
Figure 10) as ASCII.

Run:
    python examples/compare_players.py [set_number]
"""

import sys

from repro.analysis.report import ascii_plot, format_table
from repro.core.turbulence import TurbulenceProfile
from repro.experiments.datasets import build_table1_library
from repro.experiments.runner import run_pair_experiment
from repro.media.library import RateBand


def main(set_number: int = 1) -> None:
    library = build_table1_library()
    clip_set = library.get_set(set_number)

    rows = []
    bandwidth_series = {}
    for band in clip_set.bands:
        pair = clip_set.pair(band)
        print(f"running set {set_number} {band.value} pair "
              f"({pair.real.encoded_kbps:.0f}K / "
              f"{pair.wmp.encoded_kbps:.0f}K)...")
        result = run_pair_experiment(clip_set, pair,
                                     seed=2002 + set_number * 10)
        print(f"  conditions: {result.conditions.describe()}")
        print(f"  path: {result.tracert.hop_count} hops, ping "
              f"{result.ping_before.avg_rtt * 1000:.0f} ms")
        for profile in (result.real_profile(), result.wmp_profile()):
            rows.append(profile.summary_row())
        label = pair.real.label()
        bandwidth_series[label] = result.real_stats.bandwidth_timeline()
        label = pair.wmp.label()
        bandwidth_series[label] = result.wmp_stats.bandwidth_timeline()

    print()
    print("turbulence profiles (paper Section III):")
    print(format_table(TurbulenceProfile.SUMMARY_HEADERS, rows))
    print()
    print("bandwidth vs. time (paper Figure 10):")
    for label, series in bandwidth_series.items():
        print(ascii_plot(series, title=label, height=8,
                         x_label="seconds", y_label="Kbps"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)

#!/usr/bin/env python3
"""Future work, realized: the two players under constrained bandwidth.

The paper closes by proposing "studies similar to this one under
bandwidth constrained conditions" and warns that IP fragmentation "can
seriously degrade network goodput during congestion, since a loss of a
single fragment results in the larger application layer frame being
discarded" [FF99].  This example runs that study: the same high-rate
pair over a path with packet loss, measuring frame loss and the bytes
wasted by partially-delivered fragment trains.

Run:
    python examples/congestion_study.py
"""

from repro.analysis.report import format_table
from repro.media.clip import Clip, ClipEncoding, PlayerFamily
from repro.netsim.engine import Simulator
from repro.netsim.topology import build_path_topology
from repro.players.mediatracker import MediaTracker
from repro.players.realtracker import RealTracker
from repro.servers.realserver import RealServer
from repro.servers.wms import WindowsMediaServer

LOSS_LEVELS = (0.0, 0.01, 0.03, 0.05)


def run_once(loss: float):
    sim = Simulator(seed=2002)
    path = build_path_topology(sim, hop_count=17, rtt=0.040,
                               loss_probability=loss)
    real_server = RealServer(path.servers[0])
    real_server.add_clip(Clip(
        title="clip-r", genre="Sports", duration=60.0,
        encoding=ClipEncoding(family=PlayerFamily.REAL,
                              encoded_kbps=284.0, advertised_kbps=300.0)))
    wms = WindowsMediaServer(path.servers[1])
    wms.add_clip(Clip(
        title="clip-m", genre="Sports", duration=60.0,
        encoding=ClipEncoding(family=PlayerFamily.WMP,
                              encoded_kbps=323.1, advertised_kbps=300.0)))
    real_player = RealTracker(path.client, path.servers[0].address)
    wmp_player = MediaTracker(path.client, path.servers[1].address)
    real_player.play("clip-r")
    wmp_player.play("clip-m")
    sim.run(until=400.0)
    for player in (real_player, wmp_player):
        if not player.done:
            player.finalize()  # loss may have eaten the EOS datagram
    wasted = path.client.ip.stats.wasted_fragment_bytes
    return real_player.stats, wmp_player.stats, wasted


def main() -> None:
    rows = []
    for loss in LOSS_LEVELS:
        real_stats, wmp_stats, wasted = run_once(loss)
        rows.append([
            f"{loss * 100:.0f}%",
            f"{real_stats.packets_lost}",
            f"{real_stats.frame_loss_percent:.1f}%",
            f"{wmp_stats.packets_lost}",
            f"{wmp_stats.frame_loss_percent:.1f}%",
            f"{wasted / 1024:.0f} KiB",
        ])
    print("both players streaming a ~300 Kbps clip through a lossy "
          "middle link:")
    print(format_table(
        ("link loss", "Real pkts lost", "Real frames lost",
         "WMP pkts lost", "WMP frames lost", "wasted fragment bytes"),
        rows))
    print()
    print("the asymmetry is the paper's [FF99] warning: each lost WMP")
    print("fragment discards a whole multi-packet ADU (several frames),")
    print("while a lost Real packet costs only itself.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section IV in practice: generate realistic streaming traffic.

"Network researchers should be able to use the results to produce more
realistic video traffic for popular simulators, such as NS."  This
example plays that downstream researcher: it samples network conditions
from Figures 1-2, generates MediaPlayer-like and RealPlayer-like flows
from the Section IV models, verifies their turbulence signatures, and
exports one of them as a pcap file any tool can open.

Run:
    python examples/traffic_generator.py [output.pcap]
"""

import random
import sys

from repro.analysis.report import format_table
from repro.capture.pcap import write_pcap
from repro.core.fitting import fit_profile
from repro.core.generator import generate_flow
from repro.core.models import sample_hop_count, sample_rtt
from repro.core.turbulence import TurbulenceProfile
from repro.media.clip import PlayerFamily


def main(output_path: str = "synthetic_wmp_300k.pcap") -> None:
    rng = random.Random(2002)
    print("sampled network conditions for 5 simulated placements:")
    for index in range(5):
        rtt = sample_rtt(rng)
        hops = sample_hop_count(rng)
        print(f"  placement {index + 1}: rtt={rtt * 1000:.0f} ms, "
              f"hops={hops}")

    scenarios = [
        (PlayerFamily.WMP, 49.8, 60.0),
        (PlayerFamily.WMP, 307.2, 60.0),
        (PlayerFamily.WMP, 731.3, 60.0),
        (PlayerFamily.REAL, 36.0, 120.0),
        (PlayerFamily.REAL, 284.0, 120.0),
        (PlayerFamily.REAL, 636.9, 120.0),
    ]
    rows = []
    exported = None
    for family, kbps, duration in scenarios:
        flow = generate_flow(family, kbps, duration, seed=7)
        profile = fit_profile(flow.to_trace(), kbps,
                              label=f"{family.value} {kbps:.0f}K")
        rows.append(profile.summary_row())
        if family == PlayerFamily.WMP and kbps > 300 and exported is None:
            exported = flow

    print()
    print("generated-flow turbulence (compare with the paper's "
          "measured signatures):")
    print(format_table(TurbulenceProfile.SUMMARY_HEADERS, rows))

    count = write_pcap(exported.to_trace(), output_path)
    print(f"\nwrote {count} packets of the 307.2 Kbps MediaPlayer flow "
          f"to {output_path} (valid libpcap; open it in any analyzer)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "synthetic_wmp_300k.pcap")
